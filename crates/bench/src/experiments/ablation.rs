//! Ablations for the design choices DESIGN.md calls out.
//!
//! **A. One-time tracking: Alg. 2 bitmap vs. the naive scheme.** §IV-C:
//! "A trivial way for the contract to realize this is to store the index
//! values of all one-time tokens having made a successful access. However,
//! as the on-chain storage is expensive, this approach can be costly and
//! impractical." The ablation measures both.
//!
//! **B. Shield overhead.** The same call against the same contract,
//! unshielded vs. SMACS-shielded — the end-to-end price of Alg. 1.
//!
//! **C. Per-call vs. update cost.** An on-chain whitelist checks cheaper
//! *per call* (one `SLOAD` vs. one `ecrecover`-based verification); SMACS
//! wins on updates (0 gas vs. one transaction per list edit) and on
//! privacy. The ablation quantifies the crossover.

use smacs_chain::abi::{self, AbiType};
use smacs_chain::{CallContext, Chain, Contract, VmError};
use smacs_contracts::{BenchTarget, OnChainWhitelistSale};
use smacs_core::storage_bitmap::StorageBitmap;
use smacs_primitives::{Bytes, U256};
use smacs_token::TokenType;
use std::sync::Arc;

use crate::setup::World;

/// A contract tracking one-time indexes the naive way: one storage slot
/// per used index.
struct NaiveTracker;

const USED_MAPPING_SLOT: u64 = 7;

impl Contract for NaiveTracker {
    fn name(&self) -> &'static str {
        "NaiveTracker"
    }
    fn execute(&self, ctx: &mut CallContext<'_, '_>) -> Result<Bytes, VmError> {
        let sel = ctx.msg_sig().unwrap();
        if sel == abi::selector("use(uint256)") {
            let args = ctx.decode_args(&[AbiType::Uint])?;
            let index = args[0].as_uint().unwrap();
            let slot = ctx.mapping_slot(USED_MAPPING_SLOT, &index.to_be_bytes())?;
            let used = ctx.sload_u256(slot)?;
            ctx.require(used.is_zero(), "naive: index used")?;
            ctx.sstore_u256(slot, U256::ONE)?;
            Ok(Bytes::new())
        } else {
            ctx.revert("unknown")
        }
    }
}

/// A contract tracking indexes with the Alg. 2 bitmap.
struct BitmapTracker {
    n_bits: u64,
}

impl Contract for BitmapTracker {
    fn name(&self) -> &'static str {
        "BitmapTracker"
    }
    fn constructor(&self, ctx: &mut CallContext<'_, '_>) -> Result<(), VmError> {
        StorageBitmap::init(ctx, self.n_bits)
    }
    fn execute(&self, ctx: &mut CallContext<'_, '_>) -> Result<Bytes, VmError> {
        let sel = ctx.msg_sig().unwrap();
        if sel == abi::selector("use(uint256)") {
            let args = ctx.decode_args(&[AbiType::Uint])?;
            let index = args[0].as_uint().unwrap().low_u128();
            let verdict = StorageBitmap::try_use(ctx, index)?;
            ctx.require(verdict.is_accepted(), "bitmap: rejected")?;
            Ok(Bytes::new())
        } else {
            ctx.revert("unknown")
        }
    }
}

/// Ablation A results.
#[derive(Clone, Debug)]
pub struct OneTimeAblation {
    /// Indexes consumed in the run.
    pub uses: usize,
    /// Average per-use gas, naive scheme.
    pub naive_avg_gas: f64,
    /// Average per-use gas, bitmap.
    pub bitmap_avg_gas: f64,
    /// Live storage slots after the run, naive scheme.
    pub naive_slots: usize,
    /// Live storage slots after the run, bitmap (words + metadata).
    pub bitmap_slots: usize,
}

/// Run ablation A over `uses` sequential indexes.
pub fn measure_one_time(uses: usize) -> OneTimeAblation {
    let mut chain = Chain::default_chain();
    let owner = chain.funded_keypair(1, 10u128.pow(26));
    let (naive, _) = chain.deploy(&owner, Arc::new(NaiveTracker)).unwrap();
    let (bitmap, _) = chain
        .deploy_with_limit(
            &owner,
            Arc::new(BitmapTracker { n_bits: 4_096 }),
            0,
            20_000_000,
        )
        .unwrap();

    let mut naive_gas = 0u64;
    let mut bitmap_gas = 0u64;
    for i in 0..uses {
        let call = abi::encode_call(
            "use(uint256)",
            &[smacs_chain::AbiValue::Uint(U256::from(i))],
        );
        let r = chain
            .call_contract(&owner, naive.address, 0, call.clone())
            .unwrap();
        assert!(r.status.is_success());
        naive_gas += r.gas_used;
        let r = chain
            .call_contract(&owner, bitmap.address, 0, call)
            .unwrap();
        assert!(r.status.is_success(), "{:?}", r.status);
        bitmap_gas += r.gas_used;
    }
    OneTimeAblation {
        uses,
        naive_avg_gas: naive_gas as f64 / uses as f64,
        bitmap_avg_gas: bitmap_gas as f64 / uses as f64,
        naive_slots: chain.state().storage_slot_count(naive.address),
        bitmap_slots: chain.state().storage_slot_count(bitmap.address),
    }
}

/// Ablation B results.
#[derive(Clone, Debug)]
pub struct ShieldAblation {
    /// Gas for the call against the unshielded contract.
    pub unshielded_gas: u64,
    /// Gas for the same call (super token) against the shielded contract.
    pub shielded_gas: u64,
}

impl ShieldAblation {
    /// The absolute access-control surcharge per call.
    pub fn overhead(&self) -> u64 {
        self.shielded_gas - self.unshielded_gas
    }
}

/// Run ablation B.
pub fn measure_shield_overhead() -> ShieldAblation {
    // Unshielded baseline.
    let mut chain = Chain::default_chain();
    let owner = chain.funded_keypair(1, 10u128.pow(24));
    let (plain, _) = chain.deploy(&owner, Arc::new(BenchTarget)).unwrap();
    let r = chain
        .call_contract(&owner, plain.address, 0, BenchTarget::ping_payload(3, 4))
        .unwrap();
    assert!(r.status.is_success());
    let unshielded_gas = r.gas_used;

    // Shielded with a super token.
    let mut world = World::new();
    let payload = BenchTarget::ping_payload(3, 4);
    let token = world.issue(
        TokenType::Super,
        world.target,
        BenchTarget::PING_SIG,
        &payload,
        false,
    );
    let r = world
        .client
        .call_with_token(&mut world.chain, world.target, 0, &payload, token)
        .unwrap();
    assert!(r.status.is_success());
    ShieldAblation {
        unshielded_gas,
        shielded_gas: r.gas_used,
    }
}

/// Ablation C results: the per-call vs. per-update trade.
#[derive(Clone, Debug)]
pub struct AccessControlTrade {
    /// Per-call surcharge of an on-chain whitelist membership check.
    pub onchain_check_gas: u64,
    /// Per-call surcharge of SMACS verification (super token).
    pub smacs_check_gas: u64,
    /// Per-update cost of the on-chain whitelist (one add transaction).
    pub onchain_update_gas: u64,
    /// Per-update cost of a SMACS rule edit.
    pub smacs_update_gas: u64,
}

impl AccessControlTrade {
    /// Calls per list update below which SMACS is cheaper overall.
    pub fn break_even_calls_per_update(&self) -> f64 {
        let per_call_penalty = self.smacs_check_gas.saturating_sub(self.onchain_check_gas) as f64;
        if per_call_penalty == 0.0 {
            return f64::INFINITY;
        }
        self.onchain_update_gas as f64 / per_call_penalty
    }
}

/// Run ablation C.
pub fn measure_access_control_trade() -> AccessControlTrade {
    // On-chain whitelist: membership check cost = buy() with vs. a plain
    // unchecked sale method is hard to isolate; measure the add (update)
    // and approximate the check as keccak + sload (≈250 gas) from the gas
    // schedule — plus measure the actual buy to sanity-check.
    let mut chain = Chain::default_chain();
    let owner = chain.funded_keypair(1, 10u128.pow(26));
    let buyer = chain.funded_keypair(2, 10u128.pow(24));
    let (sale, _) = chain
        .deploy(&owner, Arc::new(OnChainWhitelistSale::new(owner.address())))
        .unwrap();
    let add = chain
        .call_contract(
            &owner,
            sale.address,
            0,
            OnChainWhitelistSale::add_payload(buyer.address()),
        )
        .unwrap();
    let onchain_update_gas = add.gas_used;
    let schedule = chain.schedule().clone();
    let onchain_check_gas = schedule.sload + schedule.keccak_cost(52);

    let shield = measure_shield_overhead();
    AccessControlTrade {
        onchain_check_gas,
        smacs_check_gas: shield.overhead(),
        onchain_update_gas,
        smacs_update_gas: 0,
    }
}

/// Render all three ablations.
pub fn report(
    one_time: &OneTimeAblation,
    shield: &ShieldAblation,
    trade: &AccessControlTrade,
) -> String {
    let mut out = String::new();
    out.push_str("Ablation A: one-time tracking — Alg. 2 bitmap vs naive per-index slots\n");
    out.push_str(&format!(
        "  {} uses | naive {:.0} gas/use, {} slots | bitmap {:.0} gas/use, {} slots\n",
        one_time.uses,
        one_time.naive_avg_gas,
        one_time.naive_slots,
        one_time.bitmap_avg_gas,
        one_time.bitmap_slots,
    ));
    out.push_str(&format!(
        "  bitmap saves {:.0}% storage and {:.0}% steady-state gas per use\n",
        100.0 * (1.0 - one_time.bitmap_slots as f64 / one_time.naive_slots as f64),
        100.0 * (1.0 - one_time.bitmap_avg_gas / one_time.naive_avg_gas),
    ));

    out.push_str("\nAblation B: shield overhead (same call, same contract)\n");
    out.push_str(&format!(
        "  unshielded {} gas | shielded {} gas | access control costs {} gas/call\n",
        shield.unshielded_gas,
        shield.shielded_gas,
        shield.overhead(),
    ));

    out.push_str("\nAblation C: per-call vs per-update access control cost\n");
    out.push_str(&format!(
        "  per call:   on-chain whitelist ≈{} gas | SMACS verification ≈{} gas\n",
        trade.onchain_check_gas, trade.smacs_check_gas,
    ));
    out.push_str(&format!(
        "  per update: on-chain whitelist {} gas | SMACS rule edit {} gas\n",
        trade.onchain_update_gas, trade.smacs_update_gas,
    ));
    out.push_str(&format!(
        "  an on-chain list amortizes its update over ≈{:.2} calls; below that rate —\n",
        trade.break_even_calls_per_update(),
    ));
    out.push_str(
        "  or whenever rules must stay private/updatable/complex — SMACS wins despite the per-call premium\n",
    );
    out
}
