//! Fig. 9 — Token Service throughput.
//!
//! "For each token type, we send 10^i (0 ≤ i ≤ 5) token requests to the
//! TS, record the total time needed by the TS, and compute the average
//! time required per token request. The rules used are composed of
//! blacklists and whitelists as presented in Fig. 6."
//!
//! The paper's Node.js TS plateaus around 200–300 req/s; the shape to
//! reproduce is throughput *rising with batch size then flattening*. The
//! Rust TS is faster in absolute terms (recorded in EXPERIMENTS.md).

use smacs_crypto::Keypair;
use smacs_primitives::Address;
use smacs_token::{TokenRequest, TokenType};
use smacs_ts::{InProcessClient, ListPolicy, RuleBook, TokenService, TokenServiceConfig, TsApi};
use std::time::Instant;

/// One measured point.
#[derive(Clone, Debug)]
pub struct Point {
    /// Batch size (number of requests).
    pub requests: usize,
    /// Requests processed per second.
    pub throughput: f64,
    /// Average per-request latency in microseconds.
    pub avg_latency_us: f64,
}

/// One series (token type; the fourth series is argument + one-time).
#[derive(Clone, Debug)]
pub struct Series {
    /// Legend label.
    pub label: &'static str,
    /// Points for batch sizes 10^0 … 10^max.
    pub points: Vec<Point>,
}

/// Build the Fig. 6-style rule book: a sender whitelist containing the
/// client among `list_size − 1` other addresses, a method blacklist, and
/// an argument whitelist.
pub fn fig6_rules(client: Address, list_size: usize) -> RuleBook {
    let mut book = RuleBook::deny_all();
    for ttype in TokenType::ALL {
        let mut whitelist = ListPolicy::deny_all();
        for i in 0..list_size.saturating_sub(1) {
            whitelist.insert(Address::from_low_u64(0x1_0000 + i as u64).to_hex());
        }
        whitelist.insert(client.to_hex());
        let rules = book.rules_mut(ttype);
        rules.sender = Some(whitelist);
        rules.method.insert(
            "methodA(uint256)".into(),
            ListPolicy::Blacklist(
                (0..list_size / 2)
                    .map(|i| Address::from_low_u64(0x2_0000 + i as u64).to_hex())
                    .collect(),
            ),
        );
        rules.argument.insert(
            "argA".into(),
            ListPolicy::Whitelist(
                (0..list_size / 2)
                    .map(|i| Address::from_low_u64(0x3_0000 + i as u64).to_hex())
                    .collect(),
            ),
        );
    }
    book
}

fn request_for(
    ttype: TokenType,
    one_time: bool,
    client: Address,
    contract: Address,
) -> TokenRequest {
    let mut req = match ttype {
        TokenType::Super => TokenRequest::super_token(contract, client),
        TokenType::Method => TokenRequest::method_token(contract, client, "ping(uint256,uint256)"),
        TokenType::Argument => TokenRequest::argument_token(
            contract,
            client,
            "ping(uint256,uint256)",
            vec![],
            vec![0xAB; 68],
        ),
    };
    if one_time {
        req = req.one_time();
    }
    req
}

/// Run the sweep. `max_exponent` 5 reproduces the paper exactly; smaller
/// values keep CI fast.
pub fn measure(max_exponent: u32) -> Vec<Series> {
    let client = Keypair::from_seed(77).address();
    let contract = Address::from_low_u64(0xC0);
    let ts = InProcessClient::new(
        TokenService::new(
            Keypair::from_seed(9_000),
            fig6_rules(client, 1_000),
            TokenServiceConfig::default(),
        ),
        "fig9-owner",
        0,
    );
    let configs: [(&'static str, TokenType, bool); 4] = [
        ("Super", TokenType::Super, false),
        ("Method", TokenType::Method, false),
        ("Argument", TokenType::Argument, false),
        ("Arg. (one-time)", TokenType::Argument, true),
    ];
    configs
        .into_iter()
        .map(|(label, ttype, one_time)| {
            let req = request_for(ttype, one_time, client, contract);
            let points = (0..=max_exponent)
                .map(|i| {
                    let n = 10usize.pow(i);
                    let start = Instant::now();
                    for k in 0..n {
                        ts.set_time(k as u64);
                        let token = ts.issue(&req).expect("issuance");
                        std::hint::black_box(token);
                    }
                    let elapsed = start.elapsed().as_secs_f64();
                    Point {
                        requests: n,
                        throughput: n as f64 / elapsed,
                        avg_latency_us: elapsed * 1e6 / n as f64,
                    }
                })
                .collect();
            Series { label, points }
        })
        .collect()
}

/// Render the figure's data.
pub fn report(series: &[Series]) -> String {
    let mut out = String::new();
    out.push_str("Fig. 9: throughput of the TS (requests processed per second)\n");
    out.push_str(&format!("{:>10}", "requests"));
    for s in series {
        out.push_str(&format!(" {:>16}", s.label));
    }
    out.push('\n');
    let depth = series.first().map(|s| s.points.len()).unwrap_or(0);
    for i in 0..depth {
        out.push_str(&format!("{:>10}", series[0].points[i].requests));
        for s in series {
            out.push_str(&format!(" {:>16.0}", s.points[i].throughput));
        }
        out.push('\n');
    }
    out.push_str(
        "paper: rises with batching, plateaus ≈200–300 req/s (Node.js); shape must match, absolute scale is substrate-dependent\n",
    );
    out
}
