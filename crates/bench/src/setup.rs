//! Shared experiment scaffolding: chains, shielded deployments, token
//! services, and issuance shortcuts.

use smacs_chain::Chain;
use smacs_contracts::{BenchTarget, ChainLink};
use smacs_core::client::ClientWallet;
use smacs_core::owner::{OwnerToolkit, ShieldParams};
use smacs_primitives::Address;
use smacs_token::{Token, TokenRequest, TokenType};
use smacs_ts::{InProcessClient, RuleBook, TokenService, TokenServiceConfig, TsApi};

/// A ready-to-measure world: chain, owner toolkit, TS API client, one
/// shielded [`BenchTarget`], and a funded client.
pub struct World {
    /// The simulated chain.
    pub chain: Chain,
    /// Owner + TS keys.
    pub toolkit: OwnerToolkit,
    /// The Token Service behind the [`TsApi`] surface (permissive rules
    /// unless reconfigured via `api.service()`).
    pub api: InProcessClient,
    /// Address of the shielded benchmark target.
    pub target: Address,
    /// A funded client wallet.
    pub client: ClientWallet,
}

/// Shield parameters used across the gas experiments: 1-hour tokens at the
/// 0.35 tx/s rate (small bitmap so deployment fits default limits; Table IV
/// sweeps the larger sizes explicitly).
pub fn gas_experiment_params() -> ShieldParams {
    ShieldParams {
        token_lifetime_secs: 3_600,
        max_tx_per_second: 0.35,
        disable_one_time: false,
    }
}

impl World {
    /// Build the standard single-target world.
    pub fn new() -> World {
        let mut chain = Chain::default_chain();
        let owner = chain.funded_keypair(1, 10u128.pow(24));
        let client_kp = chain.funded_keypair(2, 10u128.pow(24));
        let toolkit = OwnerToolkit::new(owner, smacs_crypto::Keypair::from_seed(9_000));
        let (target, _) = toolkit
            .deploy_shielded(
                &mut chain,
                std::sync::Arc::new(BenchTarget),
                &gas_experiment_params(),
            )
            .expect("deployment");
        let ts = TokenService::new(
            toolkit.ts_keypair().clone(),
            RuleBook::permissive(),
            TokenServiceConfig::default(),
        );
        let api = InProcessClient::new(ts, "bench-owner", chain.pending_env().timestamp);
        World {
            chain,
            toolkit,
            api,
            target: target.address,
            client: ClientWallet::new(client_kp),
        }
    }

    /// Build a world whose target is a shielded call chain of `depth`
    /// links; returns the link addresses, entry first.
    pub fn with_chain_depth(depth: usize) -> (World, Vec<Address>) {
        let mut world = World::new();
        let params = gas_experiment_params();
        let mut next: Option<Address> = None;
        let mut links = Vec::new();
        for _ in 0..depth {
            let logic = match next {
                Some(addr) => ChainLink::forwarding_to(addr),
                None => ChainLink::terminal(),
            };
            let (deployed, _) = world
                .toolkit
                .deploy_shielded(&mut world.chain, std::sync::Arc::new(logic), &params)
                .expect("deployment");
            next = Some(deployed.address);
            links.push(deployed.address);
        }
        links.reverse();
        (world, links)
    }

    /// The TS-local time (aligned to the chain's pending block).
    pub fn now(&self) -> u64 {
        self.chain.pending_env().timestamp
    }

    /// Issue a token of `ttype` for `contract` bound to `payload`.
    pub fn issue(
        &self,
        ttype: TokenType,
        contract: Address,
        method: &str,
        payload: &[u8],
        one_time: bool,
    ) -> Token {
        let mut req = match ttype {
            TokenType::Super => TokenRequest::super_token(contract, self.client.address()),
            TokenType::Method => {
                TokenRequest::method_token(contract, self.client.address(), method)
            }
            TokenType::Argument => TokenRequest::argument_token(
                contract,
                self.client.address(),
                method,
                vec![],
                payload.to_vec(),
            ),
        };
        if one_time {
            req = req.one_time();
        }
        self.api.set_time(self.now());
        self.api.issue(&req).expect("issuance")
    }
}

impl Default for World {
    fn default() -> Self {
        Self::new()
    }
}
