//! # smacs-bench — the experiment harness
//!
//! One module per table/figure of the paper's §VI, each exposing a
//! `measure()` returning structured results and a `report()` rendering the
//! same rows the paper prints, side by side with the paper's published
//! numbers. Binaries under `src/bin/` wrap these for the command line;
//! integration tests assert the qualitative shapes (orderings, linearity,
//! crossovers) hold.

pub mod experiments;
pub mod openloop;
pub mod perf;
pub mod setup;

pub use experiments::{ablation, fig8, fig9, motivation, runtime_tools, table2, table3, table4};

/// Render a line of a two-way comparison: measured vs paper.
pub fn compare_line(label: &str, measured: f64, paper: f64, unit: &str) -> String {
    let ratio = if paper != 0.0 {
        measured / paper
    } else {
        f64::NAN
    };
    format!("{label:<34} measured {measured:>14.3} {unit:<6} paper {paper:>14.3} {unit:<6} ratio {ratio:>6.2}")
}
