//! Criterion micro-benchmarks for the SMACS hot paths: keccak, ECDSA
//! sign/recover, the Alg. 2 bitmap, ACR evaluation, token issuance, and
//! the full on-chain verification path.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use smacs_bench::setup::World;
use smacs_contracts::BenchTarget;
use smacs_core::bitmap::BitmapState;
use smacs_core::client::build_call_data;
use smacs_crypto::{keccak256, recover_address, Keypair};
use smacs_primitives::Address;
use smacs_token::{TokenRequest, TokenType};
use smacs_ts::{InProcessClient, RuleBook, TokenService, TokenServiceConfig, TsApi};
use std::time::Duration;

fn bench_crypto(c: &mut Criterion) {
    let mut group = c.benchmark_group("crypto");
    let kp = Keypair::from_seed(1);
    let digest = keccak256(b"benchmark digest");
    let sig = kp.sign_digest(&digest);

    group.bench_function("keccak256_86B", |b| {
        let data = [0xABu8; 86];
        b.iter(|| keccak256(std::hint::black_box(&data)))
    });
    group.bench_function("ecdsa_sign", |b| b.iter(|| kp.sign_digest(&digest)));
    group.bench_function("ecdsa_recover", |b| {
        b.iter(|| recover_address(&digest, &sig).unwrap())
    });
    group.finish();
}

fn bench_bitmap(c: &mut Criterion) {
    let mut group = c.benchmark_group("bitmap");
    group.bench_function("try_use_sequential_1k", |b| {
        b.iter_batched(
            || BitmapState::new(126_000),
            |mut bm| {
                for i in 0..1_000u128 {
                    assert!(bm.try_use(i).is_accepted());
                }
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("try_use_window_slide", |b| {
        b.iter_batched(
            || {
                let mut bm = BitmapState::new(1_024);
                for i in 0..1_024u128 {
                    bm.try_use(i);
                }
                bm
            },
            |mut bm| bm.try_use(2_000),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_rules(c: &mut Criterion) {
    let mut group = c.benchmark_group("acr");
    let client = Keypair::from_seed(2).address();
    let rules = smacs_bench::fig9::fig6_rules(client, 10_000);
    let req = TokenRequest::super_token(Address::from_low_u64(0xC0), client);
    group.bench_function("check_10k_whitelist", |b| {
        b.iter(|| rules.check(std::hint::black_box(&req)).unwrap())
    });
    group.finish();
}

fn bench_issuance(c: &mut Criterion) {
    let mut group = c.benchmark_group("issuance");
    let client = Keypair::from_seed(2).address();
    let contract = Address::from_low_u64(0xC0);
    let ts = InProcessClient::new(
        TokenService::new(
            Keypair::from_seed(3),
            RuleBook::permissive(),
            TokenServiceConfig::default(),
        ),
        "bench-owner",
        0,
    );
    for (label, req) in [
        ("super", TokenRequest::super_token(contract, client)),
        (
            "method",
            TokenRequest::method_token(contract, client, BenchTarget::PING_SIG),
        ),
        (
            "argument",
            TokenRequest::argument_token(
                contract,
                client,
                BenchTarget::PING_SIG,
                vec![],
                BenchTarget::ping_payload(1, 2),
            ),
        ),
    ] {
        group.bench_function(label, |b| b.iter(|| ts.issue(&req).unwrap()));
    }
    group.finish();
}

fn bench_ts_issue_batch(c: &mut Criterion) {
    use smacs_bench::perf::WireScenario;

    // The acceptance comparison: 64 tokens per v2 batch envelope on a
    // keep-alive connection vs 64 sequential v1 single-issue round trips
    // (fresh connection each). Both paths hit the same HTTP server.
    const BATCH: usize = 64;
    let mut group = c.benchmark_group("ts_issue_batch");
    group.sample_size(10);
    let scenario = WireScenario::new(BATCH);
    scenario.client.ping().expect("server alive");
    group.bench_function("http_batch_64", |b| b.iter(|| scenario.run_batch()));
    group.bench_function("http_v1_sequential_64", |b| {
        b.iter(|| scenario.run_v1_sequential())
    });
    group.finish();
}

fn bench_ts_concurrent_issuance(c: &mut Criterion) {
    use smacs_primitives::WorkerPool;

    // Tokens/sec vs signing-pool size: batch-of-256 in-process issuance
    // through pools of 1/2/4/8 workers. Workers beyond the core count add
    // nothing (and a 1-core box pins every variant to the sequential
    // baseline) — the absolute numbers say what the hardware allows.
    const BATCH: usize = 256;
    let mut group = c.benchmark_group("ts_concurrent_issuance");
    group.sample_size(10);
    let contract = Address::from_low_u64(0xC0);
    let requests: Vec<TokenRequest> = (0..BATCH)
        .map(|i| {
            TokenRequest::method_token(
                contract,
                Address::from_low_u64(40_000 + i as u64),
                BenchTarget::PING_SIG,
            )
        })
        .collect();
    for workers in [1usize, 2, 4, 8] {
        let pool = WorkerPool::new(workers, 4096);
        let ts = TokenService::new(
            Keypair::from_seed(3),
            RuleBook::permissive(),
            TokenServiceConfig::default(),
        )
        .with_pool(pool.clone());
        group.bench_function(format!("batch_256_pool_{workers}"), |b| {
            b.iter(|| {
                let results = ts.issue_batch(&requests, 0);
                debug_assert!(results.iter().all(|r| r.is_ok()));
                results.len()
            })
        });
        pool.shutdown();
    }
    group.finish();
}

fn bench_verify_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("onchain_verify");
    group.sample_size(20);
    for ttype in TokenType::ALL {
        let mut world = World::new();
        let payload = BenchTarget::ping_payload(3, 4);
        let token = world.issue(ttype, world.target, BenchTarget::PING_SIG, &payload, false);
        let data = build_call_data(&payload, world.target, token);
        let from = world.client.address();
        let target = world.target;
        group.bench_function(format!("dry_run_{ttype}"), |b| {
            b.iter(|| {
                let (result, gas, _, _) = world.chain.dry_run(from, target, 0, data.clone());
                assert!(result.is_ok());
                gas
            })
        });
    }
    group.finish();
}

fn bench_state(c: &mut Criterion) {
    use smacs_bench::perf::{populated_world, CloneBaselineState};
    use smacs_primitives::{H256, U256};

    const SLOTS: u64 = 100_000;
    let mut group = c.benchmark_group("state");
    group.sample_size(20);

    // Checkpoint + 1-slot write + revert on a 100k-slot world. The
    // journaled implementation is O(entries written); the clone baseline
    // (the seed's behaviour) pays O(world) per snapshot.
    group.bench_function("state_snapshot_large_world", |b| {
        let mut world = populated_world(SLOTS);
        let a = Address::from_low_u64(4);
        let k = H256::from_u256(U256::from_u64(1));
        b.iter(|| {
            let snap = world.snapshot();
            world.storage_set(a, k, H256::from_u256(U256::from_u64(99)));
            world.revert_to(snap);
        })
    });
    group.bench_function("state_snapshot_large_world_clone_baseline", |b| {
        let mut world = CloneBaselineState::populated(SLOTS);
        let a = Address::from_low_u64(4);
        let k = H256::from_u256(U256::from_u64(1));
        b.iter(|| {
            world.snapshot();
            world.storage_set(a, k, H256::from_u256(U256::from_u64(99)));
            world.revert();
        })
    });

    // Fork + simulate + discard: the Token Service's per-request pattern.
    group.bench_function("fork_simulate", |b| {
        let world = populated_world(SLOTS);
        let a = Address::from_low_u64(5);
        let k = H256::from_u256(U256::from_u64(2));
        b.iter(|| {
            let mut fork = world.fork();
            let snap = fork.snapshot();
            fork.storage_set(a, k, H256::from_u256(U256::from_u64(7)));
            fork.credit(Address::from_low_u64(6), 1);
            fork.revert_to(snap);
            fork
        })
    });
    group.bench_function("fork_clone_baseline", |b| {
        let world = CloneBaselineState::populated(SLOTS);
        b.iter(|| world.fork())
    });
    group.finish();
}

fn bench_call_chain(c: &mut Criterion) {
    use smacs_bench::perf::ChainScenario;

    let mut group = c.benchmark_group("exec");
    group.sample_size(10);
    // Deep token call chain: every hop re-parses the shared calldata and
    // forwards the token array, exercising the zero-copy Bytes path.
    for depth in [4usize, 16] {
        let mut scenario = ChainScenario::new(depth);
        group.bench_function(format!("call_chain_depth_{depth}"), |b| {
            b.iter(|| scenario.run_once())
        });
    }
    group.finish();
}

fn quick() -> Criterion {
    // Keep the full `cargo bench` sweep under a couple of minutes; the
    // measured operations are microseconds-scale, so short windows are
    // statistically fine.
    Criterion::default()
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1200))
        .sample_size(30)
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_crypto, bench_bitmap, bench_rules, bench_issuance, bench_ts_issue_batch,
        bench_ts_concurrent_issuance, bench_verify_path, bench_state, bench_call_chain
}
criterion_main!(benches);
