//! Qualitative shape assertions for every experiment: the orderings,
//! growth laws, and crossovers the paper's tables and figures exhibit must
//! hold in the reproduction regardless of absolute calibration.

use smacs_bench::{ablation, fig8, fig9, motivation, runtime_tools, table2, table3, table4};
use smacs_token::TokenType;

fn t2_row(rows: &[table2::Row], ttype: TokenType, one_time: bool) -> &table2::Row {
    rows.iter()
        .find(|r| r.ttype == ttype && r.one_time == one_time)
        .expect("row present")
}

#[test]
fn table2_orderings_and_magnitudes() {
    let rows = table2::measure();
    assert_eq!(rows.len(), 6);

    for one_time in [false, true] {
        let sup = t2_row(&rows, TokenType::Super, one_time);
        let method = t2_row(&rows, TokenType::Method, one_time);
        let arg = t2_row(&rows, TokenType::Argument, one_time);
        // Verification cost strictly ordered: argument > method > super.
        assert!(sup.verify < method.verify, "{one_time}");
        assert!(method.verify < arg.verify, "{one_time}");
        // Argument verification ≈ 2–4× the others (paper: ~2.9×).
        let factor = arg.verify as f64 / sup.verify as f64;
        assert!((2.0..4.5).contains(&factor), "factor {factor}");
        // Verification dominates total cost (paper: 56–85%).
        assert!(sup.verify * 2 > sup.total, "verify should be >50% of total");
    }

    // The one-time property adds a roughly constant bitmap surcharge in the
    // paper's 24–32k band and leaves Verify unchanged.
    for ttype in TokenType::ALL {
        let plain = t2_row(&rows, ttype, false);
        let one_time = t2_row(&rows, ttype, true);
        assert_eq!(plain.bitmap, 0);
        assert!(
            (24_000..=32_000).contains(&one_time.bitmap),
            "{ttype}: bitmap {}",
            one_time.bitmap
        );
        assert_eq!(plain.verify, one_time.verify, "{ttype}: verify unchanged");
    }

    // Absolute calibration: within 25% of every paper total.
    for row in &rows {
        let paper = table2::PAPER
            .iter()
            .find(|(t, o, ..)| *t == row.ttype && *o == row.one_time)
            .unwrap()
            .5;
        let ratio = row.total as f64 / paper as f64;
        assert!(
            (0.75..=1.25).contains(&ratio),
            "{}/{}: ratio {ratio}",
            row.ttype,
            row.one_time
        );
    }
}

#[test]
fn table3_linear_growth() {
    let rows = table3::measure();
    assert_eq!(rows.len(), 4);
    let base = &rows[0];
    // Single token: no parse cost, as the paper reports ("–").
    assert_eq!(base.parse, 0);
    for (i, row) in rows.iter().enumerate() {
        let n = i as u64 + 1;
        // Verify and bitmap grow exactly linearly (same work per hop).
        assert_eq!(row.verify, base.verify * n, "verify at depth {n}");
        assert_eq!(row.bitmap, base.bitmap * n, "bitmap at depth {n}");
        // Totals stay within 25% of the paper's row.
        let paper = table3::PAPER[i].5;
        let ratio = row.total as f64 / paper as f64;
        assert!((0.75..=1.25).contains(&ratio), "depth {n}: ratio {ratio}");
    }
    // Parse grows superlinearly (every frame scans the whole array).
    assert!(rows[3].parse > 3 * rows[1].parse);
}

#[test]
fn table4_deployment_cost_linear_in_bitmap() {
    let rows = table4::measure();
    assert_eq!(rows.len(), 3);
    // Storage sizes reproduce the paper's KB column exactly (same formula).
    assert!((rows[0].storage_kb - 15.38).abs() < 0.01);
    assert!((rows[1].storage_kb - 1.54).abs() < 0.01);
    assert!((rows[2].storage_kb - 0.154).abs() < 0.001);
    // Deployment gas scales ~linearly with bits (10× per row).
    let r01 = rows[0].deployment_gas as f64 / rows[1].deployment_gas as f64;
    assert!((8.0..12.0).contains(&r01), "35→3.5 ratio {r01}");
    // Headline magnitude: the 35 tx/s bitmap costs a few dollars, not
    // hundreds (paper: $2.14; ours within 2×).
    let usd = rows[0].usd();
    assert!((1.0..5.0).contains(&usd), "usd {usd}");
}

#[test]
fn fig8_series_ordering_and_linearity() {
    let series = fig8::measure();
    assert_eq!(series.len(), 4);
    let by_label = |label: &str| series.iter().find(|s| s.label == label).unwrap();
    let sup = by_label("Super");
    let method = by_label("Method");
    let arg = by_label("Argument");
    let arg_ot = by_label("Arg. (one-time)");
    for depth in 0..4 {
        // Same vertical ordering as the paper's figure.
        assert!(sup.points[depth].total < method.points[depth].total);
        assert!(method.points[depth].total < arg.points[depth].total);
        assert!(arg.points[depth].total < arg_ot.points[depth].total);
    }
    // Every series grows monotonically and roughly linearly.
    for s in &series {
        let t1 = s.points[0].total as f64;
        let t4 = s.points[3].total as f64;
        assert!((3.2..4.8).contains(&(t4 / t1)), "{}: {t4}/{t1}", s.label);
    }
}

#[test]
fn fig9_throughput_rises_with_batching() {
    // Exponent 3 keeps the test fast; the shape appears by 10^2 already.
    let series = fig9::measure(3);
    assert_eq!(series.len(), 4);
    for s in &series {
        let single = s.points[0].throughput;
        let batched = s.points.last().unwrap().throughput;
        // The paper's curve rises with batching because Node.js needs JIT
        // warm-up; an AOT-compiled TS plateaus immediately. The shape
        // assertion is therefore: batched throughput reaches (at least)
        // the same plateau as a single request, within timing noise.
        assert!(
            batched > single * 0.3,
            "{}: batched {batched} collapsed vs single {single}",
            s.label
        );
        // And the TS must beat Ethereum's peak demand (the paper's point:
        // one instance covers CryptoKitties' 48 tx/s spike).
        assert!(batched > 48.0, "{}: {batched} req/s", s.label);
    }
}

#[test]
fn runtime_tools_process_requests() {
    let hydra = runtime_tools::measure_hydra(10);
    let ecf = runtime_tools::measure_ecf(10);
    assert_eq!(hydra.requests, 10);
    assert_eq!(ecf.requests, 10);
    assert!(hydra.avg_ms > 0.0 && ecf.avg_ms > 0.0);
    // Hydra does N+1 simulations per request vs ECF's single simulation;
    // per-request work must be strictly larger. (The wall-clock gap is
    // compressed relative to the paper because our simulator has no
    // block-production latency — asserted loosely.)
    assert!(
        hydra.avg_ms > ecf.avg_ms * 0.8,
        "hydra {} vs ecf {}",
        hydra.avg_ms,
        ecf.avg_ms
    );
}

#[test]
fn motivation_whitelist_costs_what_the_paper_says() {
    // 500 entries suffice to pin the per-entry cost; scale to the anchors.
    let run = motivation::measure_entries(500);
    // Per-entry: base tx (21k) + fresh SSTORE (20k) + dispatch/hash ≈ 42–50k.
    assert!(
        (40_000.0..55_000.0).contains(&run.gas_per_entry),
        "gas/entry {}",
        run.gas_per_entry
    );
    // Extrapolated to the paper's anchors:
    let gas_10k = run.gas_per_entry * 10_000.0;
    // "around $300" (§II-B): holds at a ~3 gwei gas price and $247/ETH —
    // typical quiet-network conditions of the paper's writing period.
    let usd_3_gwei = gas_10k * 3e-9 * 247.0;
    assert!((100.0..1_000.0).contains(&usd_3_gwei), "usd {usd_3_gwei}");
    // Bluzelle's 7473 users cost 9.345 ETH: reproduced at the 40 gwei
    // gas prices of its early-2018 sale, same order of magnitude.
    let eth = run.gas_per_entry * 7_473.0 * 40e-9;
    assert!((5.0..25.0).contains(&eth), "eth {eth}");
}

#[test]
fn ablation_bitmap_beats_naive_tracking() {
    let result = ablation::measure_one_time(64);
    // Storage: the bitmap keeps O(n/256) words + metadata vs one slot per
    // index.
    assert!(result.bitmap_slots < result.naive_slots / 3);
    // Gas: warm bitmap words amortize below the naive per-index SSTORE.
    assert!(result.bitmap_avg_gas < result.naive_avg_gas);
}

#[test]
fn ablation_shield_overhead_matches_table2() {
    let result = ablation::measure_shield_overhead();
    let overhead = result.overhead();
    // The per-call surcharge is Table II's verify cost plus token calldata:
    // within the 100k–135k band.
    assert!(
        (100_000..135_000).contains(&overhead),
        "overhead {overhead}"
    );
}

#[test]
fn ablation_access_control_trade_off_shape() {
    let trade = ablation::measure_access_control_trade();
    // Per call, on-chain membership is cheaper; per update, SMACS is free.
    assert!(trade.onchain_check_gas < trade.smacs_check_gas);
    assert_eq!(trade.smacs_update_gas, 0);
    assert!(trade.onchain_update_gas > 20_000);
}

#[test]
fn journaled_snapshot_beats_clone_baseline_by_10x() {
    // Acceptance gate for the journaled-state work: checkpoint + 1-slot
    // write + revert on a 100k-slot world must be at least 10x faster than
    // the clone-the-world baseline. The real gap is orders of magnitude
    // (O(1) journal push vs. a 100k-entry map clone), so 10x leaves a wide
    // margin for noisy CI machines even in debug builds.
    const SLOTS: u64 = 100_000;
    let journaled = smacs_bench::perf::journaled_snapshot_revert_ns(SLOTS, 50);
    let clone = smacs_bench::perf::clone_snapshot_revert_ns(SLOTS, 5);
    let speedup = clone / journaled.max(1.0);
    assert!(
        speedup >= 10.0,
        "journaled {journaled:.0} ns vs clone {clone:.0} ns: only {speedup:.1}x"
    );
}

#[test]
fn fork_cost_is_independent_of_world_size() {
    // Forking a committed world must not scale with the number of slots:
    // a 100x bigger world may not make forks more than ~10x slower (the
    // slack absorbs allocator noise; the clone baseline scales ~100x).
    let small = smacs_bench::perf::journaled_fork_ns(1_000, 200).max(1.0);
    let large = smacs_bench::perf::journaled_fork_ns(100_000, 200);
    assert!(
        large / small < 10.0,
        "fork scaled with world size: {small:.0} ns -> {large:.0} ns"
    );
}

#[test]
fn ts_concurrent_signing_scales_with_workers() {
    // Acceptance gate for the worker-pool fan-out: batch-of-256 signing
    // throughput must scale ≥ 2.5x from a 1-thread to a 4-thread pool.
    // The gate is only meaningful where 4 workers can actually run — on
    // fewer than 4 cores the sweep still executes (correctness +
    // recording) but the ratio assertion is skipped, because no software
    // can conjure cores the machine does not have.
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let (batch, rounds) = if cfg!(debug_assertions) {
        (32, 1)
    } else {
        (256, 2)
    };
    let points = smacs_bench::perf::concurrent_signing_scaling(batch, &[1, 4], rounds);
    let at = |w: usize| {
        points
            .iter()
            .find(|p| p.workers == w)
            .expect("axis point measured")
            .tokens_per_sec
    };
    assert!(at(1) > 0.0 && at(4) > 0.0);
    // Ratio gates, tiered by how much hardware is really there.
    // `available_parallelism` counts SMT threads, and shared CI runners
    // add tenancy noise, so the full ≥ 2.5x bar only arms with headroom
    // (≥ 8 hardware threads ⇒ ≥ 4 physical cores in practice); a
    // 4–7-thread box gets a looser sanity bar, and below 4 the sweep is
    // recorded but unjudged — no software can conjure cores the machine
    // does not have.
    if !cfg!(debug_assertions) {
        let speedup = at(4) / at(1);
        let floor = match cores {
            0..=3 => None,
            4..=7 => Some(1.4),
            _ => Some(2.5),
        };
        if let Some(floor) = floor {
            assert!(
                speedup >= floor,
                "1→4 workers only {speedup:.2}x ({:.0} → {:.0} tokens/s) on {cores} hardware threads (floor {floor}x)",
                at(1),
                at(4)
            );
        }
    }
}

#[test]
fn connection_scaling_holds_many_connections_with_bounded_threads() {
    // Acceptance gate for the reactor-backed HTTP server: concurrent
    // keep-alive connections must not translate into threads, and idle
    // parked connections must not translate into CPU. 200 connections
    // keep the test quick; the full 50k-target run lives in
    // `all_experiments`.
    let probe = smacs_bench::perf::connection_scaling_probe_with_window(
        200,
        std::time::Duration::from_secs(1),
    );
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    assert!(
        probe.pool_workers <= (2 * cores).max(2),
        "default pool too large: {} workers on {cores} cores",
        probe.pool_workers
    );
    assert_eq!(
        probe.parked_connections, probe.connections,
        "every idle connection must end up parked in the epoll set"
    );
    if probe.os_threads > 0 {
        // Whole process: pool + reactor + test harness + the 200 client
        // sockets' owning threads... clients here are synchronous (no
        // thread each), so the ceiling is a small constant far below the
        // thread-per-connection model's 201.
        assert!(
            probe.os_threads < probe.connections / 2,
            "{} process threads for {} connections — pooling is not bounding threads",
            probe.os_threads,
            probe.connections
        );
    }
    // The readiness claim: with every connection parked and nobody
    // talking, the process burns (near) zero CPU. The poller-era server
    // swept all 200 connections every 1 ms here. 5% leaves room for CI
    // jitter; the reactor itself sits in epoll_wait.
    assert!(
        probe.idle_cpu_pct_x100 >= 0,
        "CPU accounting unreadable on this platform"
    );
    assert!(
        probe.idle_cpu_pct_x100 < 500,
        "idle CPU {:.2}% with {} parked connections — something is sweeping",
        probe.idle_cpu_pct_x100 as f64 / 100.0,
        probe.parked_connections
    );
}

#[test]
fn connection_scaling_storm_keeps_serving_batches() {
    // Acceptance gate for the two-priority lanes: an accept flood must
    // not starve batch signing, and every storm request must be served.
    let (parked, batches, batch) = if cfg!(debug_assertions) {
        (64, 6, 4)
    } else {
        (300, 12, 8)
    };
    let probe = smacs_bench::perf::connection_storm_probe(parked, batches, batch);
    assert_eq!(probe.storm_errors, 0, "storm requests were dropped");
    assert!(probe.storm_connections > 0, "storm never stormed");
    // Generous absolute ceiling — the claim is "signing kept flowing",
    // not a microbenchmark (debug builds sign ~100× slower).
    let bound_ns: u64 = if cfg!(debug_assertions) {
        10_000_000_000
    } else {
        1_000_000_000
    };
    assert!(
        probe.storm_batch_p99_ns < bound_ns,
        "batch p99 {} ns collapsed under the accept storm (calm {} ns)",
        probe.storm_batch_p99_ns,
        probe.calm_batch_p99_ns
    );
}

#[test]
fn parallel_block_execution_scales_on_multicore() {
    // Acceptance gate for optimistic parallel block execution: a
    // low-conflict block (disjoint transfers, every speculation commits
    // from its delta) must run ≥ 2x faster through a 4-thread pool than
    // sequentially. Same self-arming scheme as the signing gate: the
    // sweep always runs (correctness + recording), but the ratio is only
    // judged where the cores exist — the full 2x bar needs ≥ 8 hardware
    // threads (≥ 4 physical cores in practice), a 4–7-thread box gets a
    // looser sanity bar, and the 1-CPU reference container records the
    // numbers unjudged. Debug builds only smoke-run: unoptimized ECDSA
    // recovery dominates so heavily there that the ratio says nothing.
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let (blocks, txs) = if cfg!(debug_assertions) {
        (2, 16)
    } else {
        (6, 64)
    };
    let points = smacs_bench::perf::parallel_block_execution(blocks, txs, &[4], &[0]);
    let point = &points[0];
    assert!(point.sequential_txs_per_sec > 0.0);
    let (threads, t4) = point.by_threads[0];
    assert_eq!(threads, 4);
    assert!(t4 > 0.0);
    if !cfg!(debug_assertions) {
        let speedup = t4 / point.sequential_txs_per_sec;
        let floor = match cores {
            0..=3 => None,
            4..=7 => Some(1.2),
            _ => Some(2.0),
        };
        if let Some(floor) = floor {
            assert!(
                speedup >= floor,
                "seq → 4-thread parallel only {speedup:.2}x ({:.0} → {t4:.0} tx/s) on {cores} hardware threads (floor {floor}x)",
                point.sequential_txs_per_sec
            );
        }
    }
}

#[test]
fn touchset_recording_overhead_is_bounded() {
    // Read/write-set recording is a few hash-set inserts per overlay
    // operation; it must stay the same order of magnitude as the
    // unrecorded path, not multiply it. The bar is deliberately loose
    // (10x + 1µs absolute slack) — it exists to catch recording becoming
    // accidentally O(overlay) or allocating per op, not to police noise.
    let o = smacs_bench::perf::touchset_overhead_ns(10_000, 8);
    assert!(o.plain_op_ns > 0.0 && o.recorded_op_ns > 0.0);
    assert!(
        o.recorded_op_ns < o.plain_op_ns * 10.0 + 1_000.0,
        "recording {:.1} ns/op vs plain {:.1} ns/op",
        o.recorded_op_ns,
        o.plain_op_ns
    );
}

#[test]
fn ts_batch_issuance_outpaces_sequential_v1() {
    // Acceptance gate for the v2 wire protocol: a batch of 64 tokens per
    // round trip must beat 64 sequential v1 single-issue round trips. In
    // release the measured gap is well over 2x (connection setup, thread
    // spawn, and HTTP/JSON overhead are paid once per batch instead of
    // once per token); the CI gate asserts 1.5x to absorb shared-runner
    // noise. Debug builds only smoke-run both paths — unoptimized signing
    // dominates so heavily there that the ratio says nothing.
    let wire = smacs_bench::perf::ts_wire_throughput(64, 2);
    assert!(wire.batch_tokens_per_sec > 0.0);
    assert!(wire.v1_sequential_tokens_per_sec > 0.0);
    #[cfg(not(debug_assertions))]
    assert!(
        wire.speedup() >= 1.5,
        "batch {:.0} tok/s vs v1 {:.0} tok/s: only {:.2}x",
        wire.batch_tokens_per_sec,
        wire.v1_sequential_tokens_per_sec,
        wire.speedup()
    );
}
