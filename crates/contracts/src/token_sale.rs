//! The §II-D motivation: token sales restricted to approved users.
//!
//! "the Bluzelle decentralized database has paid 9.345 ETH (11,949 USD at
//! the time) just to whitelist 7473 users for their token sale." Two
//! implementations:
//!
//! - [`OnChainWhitelistSale`] — the costly baseline: the owner writes every
//!   approved address into contract storage (`addToWhitelist`), and `buy()`
//!   checks membership on-chain. The `motivation` bench sweeps this
//!   contract to reproduce the $300-for-10k-addresses figure;
//! - [`SmacsSale`] — the SMACS variant: `buy()` carries no list at all;
//!   approval lives in the TS's whitelist rule, updatable for free.

use smacs_chain::abi::{self, AbiType};
use smacs_chain::{CallContext, Contract, VmError};
use smacs_primitives::{Address, Bytes, H256, U256};

const OWNER_SLOT: H256 = H256([0u8; 32]);
const SOLD_SLOT: H256 = H256([
    0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1,
]);
const WHITELIST_MAPPING_SLOT: u64 = 2;
const PURCHASES_MAPPING_SLOT: u64 = 3;

/// Price per token unit, in wei.
pub const TOKEN_PRICE_WEI: u128 = 1_000;

/// The on-chain-whitelist baseline.
///
/// Methods:
/// - `addToWhitelist(address)` — owner only; one storage write per address
///   (the cost the paper's motivation quotes);
/// - `removeFromWhitelist(address)` — owner only;
/// - `buy()` (payable) — whitelisted senders only;
/// - `purchased(address)` — view.
pub struct OnChainWhitelistSale {
    owner: Address,
}

impl OnChainWhitelistSale {
    /// A sale administered by `owner`.
    pub fn new(owner: Address) -> Self {
        OnChainWhitelistSale { owner }
    }

    /// Payload for `addToWhitelist(address)`.
    pub fn add_payload(addr: Address) -> Vec<u8> {
        abi::encode_call(
            "addToWhitelist(address)",
            &[smacs_chain::AbiValue::Address(addr)],
        )
    }

    /// Payload for `buy()`.
    pub fn buy_payload() -> Vec<u8> {
        abi::encode_call("buy()", &[])
    }
}

impl Contract for OnChainWhitelistSale {
    fn name(&self) -> &'static str {
        "OnChainWhitelistSale"
    }

    fn code_len(&self) -> usize {
        2_400
    }

    fn constructor(&self, ctx: &mut CallContext<'_, '_>) -> Result<(), VmError> {
        ctx.sstore(OWNER_SLOT, smacs_core::layout::address_to_word(self.owner))
    }

    fn execute(&self, ctx: &mut CallContext<'_, '_>) -> Result<Bytes, VmError> {
        let sel = ctx.msg_sig().expect("execute implies selector");
        if sel == abi::selector("addToWhitelist(address)") {
            self.require_owner(ctx)?;
            let args = ctx.decode_args(&[AbiType::Address])?;
            let addr = args[0].as_address().expect("decoded address");
            let slot = ctx.mapping_slot(WHITELIST_MAPPING_SLOT, addr.as_bytes())?;
            ctx.sstore_u256(slot, U256::ONE)?;
            Ok(Bytes::new())
        } else if sel == abi::selector("removeFromWhitelist(address)") {
            self.require_owner(ctx)?;
            let args = ctx.decode_args(&[AbiType::Address])?;
            let addr = args[0].as_address().expect("decoded address");
            let slot = ctx.mapping_slot(WHITELIST_MAPPING_SLOT, addr.as_bytes())?;
            ctx.sstore_u256(slot, U256::ZERO)?;
            Ok(Bytes::new())
        } else if sel == abi::selector("buy()") {
            let sender = ctx.msg_sender();
            let slot = ctx.mapping_slot(WHITELIST_MAPPING_SLOT, sender.as_bytes())?;
            let listed = ctx.sload_u256(slot)?;
            ctx.require(listed == U256::ONE, "Sale: sender not whitelisted")?;
            self.record_purchase(ctx)
        } else if sel == abi::selector("purchased(address)") {
            let args = ctx.decode_args(&[AbiType::Address])?;
            let addr = args[0].as_address().expect("decoded address");
            let slot = ctx.mapping_slot(PURCHASES_MAPPING_SLOT, addr.as_bytes())?;
            Ok(Bytes::from(ctx.sload_u256(slot)?.to_be_bytes()))
        } else {
            ctx.revert("Sale: unknown method")
        }
    }
}

impl OnChainWhitelistSale {
    fn require_owner(&self, ctx: &mut CallContext<'_, '_>) -> Result<(), VmError> {
        let stored = smacs_core::layout::word_to_address(ctx.sload(OWNER_SLOT)?);
        ctx.require(ctx.msg_sender() == stored, "Sale: owner only")
    }

    fn record_purchase(&self, ctx: &mut CallContext<'_, '_>) -> Result<Bytes, VmError> {
        let units = U256::from_u128(ctx.msg_value() / TOKEN_PRICE_WEI);
        ctx.require(!units.is_zero(), "Sale: below minimum purchase")?;
        let sender = ctx.msg_sender();
        let slot = ctx.mapping_slot(PURCHASES_MAPPING_SLOT, sender.as_bytes())?;
        let current = ctx.sload_u256(slot)?;
        ctx.sstore_u256(slot, current.wrapping_add(units))?;
        let sold = ctx.sload_u256(SOLD_SLOT)?;
        ctx.sstore_u256(SOLD_SLOT, sold.wrapping_add(units))?;
        ctx.emit_event("Purchased(address,uint256)", units.to_be_bytes().to_vec())?;
        Ok(Bytes::from(units.to_be_bytes()))
    }
}

/// The SMACS variant: no list in storage at all — the shield's token check
/// *is* the whitelist (the TS holds the actual list and can update it for
/// free).
pub struct SmacsSale;

impl SmacsSale {
    /// Payload for `buy()`.
    pub fn buy_payload() -> Vec<u8> {
        abi::encode_call("buy()", &[])
    }
}

impl Contract for SmacsSale {
    fn name(&self) -> &'static str {
        "SmacsSale"
    }

    fn code_len(&self) -> usize {
        1_300
    }

    fn execute(&self, ctx: &mut CallContext<'_, '_>) -> Result<Bytes, VmError> {
        let sel = ctx.msg_sig().expect("execute implies selector");
        if sel == abi::selector("buy()") {
            let units = U256::from_u128(ctx.msg_value() / TOKEN_PRICE_WEI);
            ctx.require(!units.is_zero(), "Sale: below minimum purchase")?;
            let sender = ctx.msg_sender();
            let slot = ctx.mapping_slot(PURCHASES_MAPPING_SLOT, sender.as_bytes())?;
            let current = ctx.sload_u256(slot)?;
            ctx.sstore_u256(slot, current.wrapping_add(units))?;
            let sold = ctx.sload_u256(SOLD_SLOT)?;
            ctx.sstore_u256(SOLD_SLOT, sold.wrapping_add(units))?;
            ctx.emit_event("Purchased(address,uint256)", units.to_be_bytes().to_vec())?;
            Ok(Bytes::from(units.to_be_bytes()))
        } else if sel == abi::selector("purchased(address)") {
            let args = ctx.decode_args(&[AbiType::Address])?;
            let addr = args[0].as_address().expect("decoded address");
            let slot = ctx.mapping_slot(PURCHASES_MAPPING_SLOT, addr.as_bytes())?;
            Ok(Bytes::from(ctx.sload_u256(slot)?.to_be_bytes()))
        } else {
            ctx.revert("Sale: unknown method")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smacs_chain::Chain;
    use std::sync::Arc;

    #[test]
    fn baseline_whitelist_gating() {
        let mut chain = Chain::default_chain();
        let owner = chain.funded_keypair(1, 10u128.pow(20));
        let alice = chain.funded_keypair(2, 10u128.pow(20));
        let mallory = chain.funded_keypair(3, 10u128.pow(20));
        let (sale, _) = chain
            .deploy(&owner, Arc::new(OnChainWhitelistSale::new(owner.address())))
            .unwrap();

        // Not yet whitelisted.
        let r = chain
            .call_contract(
                &alice,
                sale.address,
                5_000,
                OnChainWhitelistSale::buy_payload(),
            )
            .unwrap();
        assert_eq!(r.revert_reason(), Some("Sale: sender not whitelisted"));

        // Owner whitelists alice — this is the on-chain write the paper's
        // motivation prices.
        let r = chain
            .call_contract(
                &owner,
                sale.address,
                0,
                OnChainWhitelistSale::add_payload(alice.address()),
            )
            .unwrap();
        assert!(r.status.is_success());
        assert!(r.gas_used > 20_000, "whitelist write costs a fresh SSTORE");

        let r = chain
            .call_contract(
                &alice,
                sale.address,
                5_000,
                OnChainWhitelistSale::buy_payload(),
            )
            .unwrap();
        assert!(r.status.is_success());
        assert_eq!(
            U256::from_be_slice(&r.return_data).unwrap(),
            U256::from_u64(5)
        );

        // Mallory still locked out; non-owner cannot whitelist.
        let r = chain
            .call_contract(
                &mallory,
                sale.address,
                0,
                OnChainWhitelistSale::add_payload(mallory.address()),
            )
            .unwrap();
        assert_eq!(r.revert_reason(), Some("Sale: owner only"));
    }

    #[test]
    fn removal_revokes_access() {
        let mut chain = Chain::default_chain();
        let owner = chain.funded_keypair(1, 10u128.pow(20));
        let alice = chain.funded_keypair(2, 10u128.pow(20));
        let (sale, _) = chain
            .deploy(&owner, Arc::new(OnChainWhitelistSale::new(owner.address())))
            .unwrap();
        chain
            .call_contract(
                &owner,
                sale.address,
                0,
                OnChainWhitelistSale::add_payload(alice.address()),
            )
            .unwrap();
        let remove = abi::encode_call(
            "removeFromWhitelist(address)",
            &[smacs_chain::AbiValue::Address(alice.address())],
        );
        chain
            .call_contract(&owner, sale.address, 0, remove)
            .unwrap();
        let r = chain
            .call_contract(
                &alice,
                sale.address,
                5_000,
                OnChainWhitelistSale::buy_payload(),
            )
            .unwrap();
        assert_eq!(r.revert_reason(), Some("Sale: sender not whitelisted"));
    }

    #[test]
    fn smacs_sale_records_purchases() {
        let mut chain = Chain::default_chain();
        let owner = chain.funded_keypair(1, 10u128.pow(20));
        let alice = chain.funded_keypair(2, 10u128.pow(20));
        // Unshielded here: shield interaction is covered in smacs-core's
        // end-to-end tests; this checks the sale logic itself.
        let (sale, _) = chain.deploy(&owner, Arc::new(SmacsSale)).unwrap();
        let r = chain
            .call_contract(&alice, sale.address, 3_000, SmacsSale::buy_payload())
            .unwrap();
        assert!(r.status.is_success());
        assert_eq!(
            U256::from_be_slice(&r.return_data).unwrap(),
            U256::from_u64(3)
        );

        // Below minimum.
        let r = chain
            .call_contract(&alice, sale.address, 500, SmacsSale::buy_payload())
            .unwrap();
        assert_eq!(r.revert_reason(), Some("Sale: below minimum purchase"));
    }
}
