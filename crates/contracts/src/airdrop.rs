//! Airdrop scenario: every eligible account may `claim()` exactly once.
//! The corpus workload for *one-time tokens at scale* (§IV-F): the TS
//! issues `claim` method tokens with a one-time index, the shield's
//! bitmap burns each index on use, and under replication the indexes come
//! from the majority-quorum `CounterCluster` — so the load generator can
//! drive thousands of single-use issuances through the replicated
//! counter. The contract adds its own belt-and-braces `claimed` mapping
//! (defense in depth; the SMACS layer alone already blocks replays).

use smacs_chain::abi::{self, AbiType};
use smacs_chain::{CallContext, Contract, VmError};
use smacs_primitives::{Address, Bytes, H256, U256};

/// Mapping slot: claimer address → 1 once claimed.
const CLAIMED_MAPPING_SLOT: u64 = 0;
/// Storage slot counting successful claims.
const CLAIM_COUNT_SLOT: H256 = H256([
    0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1,
]);
/// Storage slot of the per-claim grant size.
const GRANT_SLOT: H256 = H256([
    0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 2,
]);
/// Mapping slot: claimer address → granted balance.
const BALANCE_MAPPING_SLOT: u64 = 3;

/// Off-chain mirror of [`CallContext::mapping_slot`].
fn mapping_slot_of(base: u64, key: &[u8]) -> H256 {
    let base_word = U256::from_u64(base).to_be_bytes();
    smacs_crypto::keccak256_concat(&[key, &base_word])
}

/// A fixed-grant airdrop whose claim path is built for one-time tokens.
pub struct Airdrop {
    grant: u64,
}

impl Airdrop {
    /// Canonical signature of the one-time-gated claim method.
    pub const CLAIM_SIG: &'static str = "claim()";

    /// An airdrop granting `grant` units per claim.
    pub fn granting(grant: u64) -> Self {
        Airdrop { grant }
    }

    /// Payload for `claim()`.
    pub fn claim_payload() -> Vec<u8> {
        abi::encode_call(Self::CLAIM_SIG, &[])
    }

    /// Read the successful-claim counter from chain state.
    pub fn claim_count(chain: &smacs_chain::Chain, drop: Address) -> U256 {
        chain.state().storage_get_u256(drop, CLAIM_COUNT_SLOT)
    }

    /// Read a claimer's granted balance from chain state.
    pub fn balance(chain: &smacs_chain::Chain, drop: Address, who: Address) -> U256 {
        chain
            .state()
            .storage_get_u256(drop, mapping_slot_of(BALANCE_MAPPING_SLOT, who.as_bytes()))
    }
}

impl Contract for Airdrop {
    fn name(&self) -> &'static str {
        "Airdrop"
    }

    fn code_len(&self) -> usize {
        1_000
    }

    fn constructor(&self, ctx: &mut CallContext<'_, '_>) -> Result<(), VmError> {
        ctx.sstore_u256(GRANT_SLOT, U256::from_u64(self.grant))
    }

    fn execute(&self, ctx: &mut CallContext<'_, '_>) -> Result<Bytes, VmError> {
        let sel = ctx.msg_sig().expect("execute implies selector");
        if sel == abi::selector(Self::CLAIM_SIG) {
            let who = ctx.msg_sender();
            let claimed = ctx.mapping_slot(CLAIMED_MAPPING_SLOT, who.as_bytes())?;
            let already = ctx.sload_u256(claimed)?;
            ctx.require(already.is_zero(), "Drop: already claimed")?;
            ctx.sstore_u256(claimed, U256::ONE)?;
            let grant = ctx.sload_u256(GRANT_SLOT)?;
            let bal = ctx.mapping_slot(BALANCE_MAPPING_SLOT, who.as_bytes())?;
            let have = ctx.sload_u256(bal)?;
            ctx.sstore_u256(bal, have.wrapping_add(grant))?;
            let n = ctx.sload_u256(CLAIM_COUNT_SLOT)?;
            ctx.sstore_u256(CLAIM_COUNT_SLOT, n.wrapping_add(U256::ONE))?;
            ctx.emit_event("Claimed(address)", who.as_bytes().to_vec())?;
            Ok(Bytes::from(grant.to_be_bytes()))
        } else if sel == abi::selector("claimedBy(address)") {
            let args = ctx.decode_args(&[AbiType::Address])?;
            let addr = args[0].as_address().expect("decoded address");
            let slot = ctx.mapping_slot(CLAIMED_MAPPING_SLOT, addr.as_bytes())?;
            Ok(Bytes::from(ctx.sload_u256(slot)?.to_be_bytes()))
        } else {
            ctx.revert("Drop: unknown method")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smacs_chain::Chain;
    use std::sync::Arc;

    #[test]
    fn claims_are_single_use_per_account() {
        let mut chain = Chain::default_chain();
        let alice = chain.funded_keypair(1, 10u128.pow(20));
        let bob = chain.funded_keypair(2, 10u128.pow(20));
        let (drop, _) = chain
            .deploy(&alice, Arc::new(Airdrop::granting(500)))
            .unwrap();

        let r = chain
            .call_contract(&alice, drop.address, 0, Airdrop::claim_payload())
            .unwrap();
        assert!(r.status.is_success(), "{:?}", r.status);
        assert_eq!(
            Airdrop::balance(&chain, drop.address, alice.address()),
            U256::from_u64(500)
        );

        // A second claim from the same account fails even without SMACS.
        let r = chain
            .call_contract(&alice, drop.address, 0, Airdrop::claim_payload())
            .unwrap();
        assert_eq!(r.revert_reason(), Some("Drop: already claimed"));

        chain
            .call_contract(&bob, drop.address, 0, Airdrop::claim_payload())
            .unwrap();
        assert_eq!(
            Airdrop::claim_count(&chain, drop.address),
            U256::from_u64(2)
        );
    }
}
