//! Oracle-update authorization scenario: a price feed whose only write
//! method, `postPrice(uint256)`, is meant to be callable by a small set of
//! operator keys — the corpus workload for *method-token sender
//! whitelists* (§IV-B). The contract itself stores no operator list: the
//! Token Service's ACR (`method: postPrice → Whitelist{operators}`) is the
//! sole authorization layer, which is precisely the SMACS claim under
//! test. Reads (`price()`, `lastUpdate()`) are open.

use smacs_chain::abi::{self, AbiType};
use smacs_chain::{CallContext, Contract, VmError};
use smacs_primitives::{Bytes, H256, U256};

/// Storage slot of the latest posted price.
const PRICE_SLOT: H256 = H256([
    0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,
]);
/// Storage slot of the block timestamp of the latest post.
const UPDATED_AT_SLOT: H256 = H256([
    0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1,
]);
/// Storage slot counting posts (distinguishes "price is 0" from "never set").
const POST_COUNT_SLOT: H256 = H256([
    0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 2,
]);

/// A single-feed price oracle relying entirely on SMACS for write access.
pub struct PriceOracle;

impl PriceOracle {
    /// Canonical signature of the guarded write method.
    pub const POST_SIG: &'static str = "postPrice(uint256)";

    /// Payload for `postPrice(price)`.
    pub fn post_payload(price: u64) -> Vec<u8> {
        abi::encode_call(
            Self::POST_SIG,
            &[smacs_chain::AbiValue::Uint(U256::from_u64(price))],
        )
    }

    /// Read the latest price from chain state.
    pub fn price(chain: &smacs_chain::Chain, oracle: smacs_primitives::Address) -> U256 {
        chain.state().storage_get_u256(oracle, PRICE_SLOT)
    }

    /// Read the number of posts from chain state.
    pub fn post_count(chain: &smacs_chain::Chain, oracle: smacs_primitives::Address) -> U256 {
        chain.state().storage_get_u256(oracle, POST_COUNT_SLOT)
    }
}

impl Contract for PriceOracle {
    fn name(&self) -> &'static str {
        "PriceOracle"
    }

    fn code_len(&self) -> usize {
        900
    }

    fn execute(&self, ctx: &mut CallContext<'_, '_>) -> Result<Bytes, VmError> {
        let sel = ctx.msg_sig().expect("execute implies selector");
        if sel == abi::selector(Self::POST_SIG) {
            let args = ctx.decode_args(&[AbiType::Uint])?;
            let price = args[0].as_uint().expect("decoded uint");
            ctx.require(!price.is_zero(), "Oracle: zero price")?;
            ctx.sstore_u256(PRICE_SLOT, price)?;
            ctx.sstore_u256(UPDATED_AT_SLOT, U256::from_u64(ctx.now()))?;
            let n = ctx.sload_u256(POST_COUNT_SLOT)?;
            ctx.sstore_u256(POST_COUNT_SLOT, n.wrapping_add(U256::ONE))?;
            ctx.emit_event("PricePosted(uint256)", price.to_be_bytes().to_vec())?;
            Ok(Bytes::new())
        } else if sel == abi::selector("price()") {
            let n = ctx.sload_u256(POST_COUNT_SLOT)?;
            ctx.require(!n.is_zero(), "Oracle: no price yet")?;
            Ok(Bytes::from(ctx.sload_u256(PRICE_SLOT)?.to_be_bytes()))
        } else if sel == abi::selector("lastUpdate()") {
            Ok(Bytes::from(ctx.sload_u256(UPDATED_AT_SLOT)?.to_be_bytes()))
        } else {
            ctx.revert("Oracle: unknown method")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smacs_chain::Chain;
    use std::sync::Arc;

    #[test]
    fn post_then_read_round_trips() {
        let mut chain = Chain::default_chain();
        let op = chain.funded_keypair(1, 10u128.pow(20));
        let (oracle, _) = chain.deploy(&op, Arc::new(PriceOracle)).unwrap();
        let r = chain
            .call_contract(&op, oracle.address, 0, PriceOracle::post_payload(42_000))
            .unwrap();
        assert!(r.status.is_success(), "{:?}", r.status);
        assert_eq!(
            PriceOracle::price(&chain, oracle.address),
            U256::from_u64(42_000)
        );
        assert_eq!(PriceOracle::post_count(&chain, oracle.address), U256::ONE);

        let r = chain
            .call_contract(&op, oracle.address, 0, abi::encode_call("price()", &[]))
            .unwrap();
        assert_eq!(
            U256::from_be_slice(&r.return_data).unwrap(),
            U256::from_u64(42_000)
        );
    }

    #[test]
    fn unposted_oracle_and_zero_price_revert() {
        let mut chain = Chain::default_chain();
        let op = chain.funded_keypair(1, 10u128.pow(20));
        let (oracle, _) = chain.deploy(&op, Arc::new(PriceOracle)).unwrap();
        let r = chain
            .call_contract(&op, oracle.address, 0, abi::encode_call("price()", &[]))
            .unwrap();
        assert_eq!(r.revert_reason(), Some("Oracle: no price yet"));
        let r = chain
            .call_contract(&op, oracle.address, 0, PriceOracle::post_payload(0))
            .unwrap();
        assert_eq!(r.revert_reason(), Some("Oracle: zero price"));
    }
}
