//! Session-token game scenario: players `join()` once, then submit
//! `play(uint256)` moves for as long as their *session token* stays valid.
//! The corpus workload for *short-lifetime method tokens as sessions*
//! (§IV-C): the owner deploys the shield with a small
//! `token_lifetime_secs`, so a single method token works for a burst of
//! moves and then expires — no on-chain session bookkeeping, re-joining
//! the TS mints a fresh session. The contract only tracks scores.

use smacs_chain::abi::{self, AbiType};
use smacs_chain::{CallContext, Contract, VmError};
use smacs_primitives::{Address, Bytes, H256, U256};

/// Mapping slot: player address → 1 once joined.
const JOINED_MAPPING_SLOT: u64 = 0;
/// Mapping slot: player address → accumulated score.
const SCORE_MAPPING_SLOT: u64 = 1;
/// Storage slot of the global best score.
const HIGH_SCORE_SLOT: H256 = H256([
    0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 2,
]);

/// Off-chain mirror of [`CallContext::mapping_slot`].
fn mapping_slot_of(base: u64, key: &[u8]) -> H256 {
    let base_word = U256::from_u64(base).to_be_bytes();
    smacs_crypto::keccak256_concat(&[key, &base_word])
}

/// A score-keeping game whose write surface is gated by session tokens.
pub struct SessionGame;

impl SessionGame {
    /// Canonical signature of the session-gated move method.
    pub const PLAY_SIG: &'static str = "play(uint256)";
    /// Canonical signature of the join method.
    pub const JOIN_SIG: &'static str = "join()";

    /// Payload for `join()`.
    pub fn join_payload() -> Vec<u8> {
        abi::encode_call(Self::JOIN_SIG, &[])
    }

    /// Payload for `play(points)`.
    pub fn play_payload(points: u64) -> Vec<u8> {
        abi::encode_call(
            Self::PLAY_SIG,
            &[smacs_chain::AbiValue::Uint(U256::from_u64(points))],
        )
    }

    /// Read a player's score from chain state.
    pub fn score(chain: &smacs_chain::Chain, game: Address, player: Address) -> U256 {
        chain
            .state()
            .storage_get_u256(game, mapping_slot_of(SCORE_MAPPING_SLOT, player.as_bytes()))
    }

    /// Read the global high score from chain state.
    pub fn high_score(chain: &smacs_chain::Chain, game: Address) -> U256 {
        chain.state().storage_get_u256(game, HIGH_SCORE_SLOT)
    }
}

impl Contract for SessionGame {
    fn name(&self) -> &'static str {
        "SessionGame"
    }

    fn code_len(&self) -> usize {
        1_200
    }

    fn execute(&self, ctx: &mut CallContext<'_, '_>) -> Result<Bytes, VmError> {
        let sel = ctx.msg_sig().expect("execute implies selector");
        if sel == abi::selector(Self::JOIN_SIG) {
            let player = ctx.msg_sender();
            let slot = ctx.mapping_slot(JOINED_MAPPING_SLOT, player.as_bytes())?;
            let already = ctx.sload_u256(slot)?;
            ctx.require(already.is_zero(), "Game: already joined")?;
            ctx.sstore_u256(slot, U256::ONE)?;
            ctx.emit_event("Joined(address)", player.as_bytes().to_vec())?;
            Ok(Bytes::new())
        } else if sel == abi::selector(Self::PLAY_SIG) {
            let args = ctx.decode_args(&[AbiType::Uint])?;
            let points = args[0].as_uint().expect("decoded uint");
            ctx.require(points <= U256::from_u64(100), "Game: move too large")?;
            let player = ctx.msg_sender();
            let joined = ctx.mapping_slot(JOINED_MAPPING_SLOT, player.as_bytes())?;
            let has_joined = ctx.sload_u256(joined)?;
            ctx.require(!has_joined.is_zero(), "Game: join first")?;
            let slot = ctx.mapping_slot(SCORE_MAPPING_SLOT, player.as_bytes())?;
            let score = ctx.sload_u256(slot)?.wrapping_add(points);
            ctx.sstore_u256(slot, score)?;
            if score > ctx.sload_u256(HIGH_SCORE_SLOT)? {
                ctx.sstore_u256(HIGH_SCORE_SLOT, score)?;
            }
            Ok(Bytes::from(score.to_be_bytes()))
        } else if sel == abi::selector("scoreOf(address)") {
            let args = ctx.decode_args(&[AbiType::Address])?;
            let addr = args[0].as_address().expect("decoded address");
            let slot = ctx.mapping_slot(SCORE_MAPPING_SLOT, addr.as_bytes())?;
            Ok(Bytes::from(ctx.sload_u256(slot)?.to_be_bytes()))
        } else {
            ctx.revert("Game: unknown method")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smacs_chain::Chain;
    use std::sync::Arc;

    #[test]
    fn join_play_and_high_score_track() {
        let mut chain = Chain::default_chain();
        let alice = chain.funded_keypair(1, 10u128.pow(20));
        let bob = chain.funded_keypair(2, 10u128.pow(20));
        let (game, _) = chain.deploy(&alice, Arc::new(SessionGame)).unwrap();

        for kp in [&alice, &bob] {
            let r = chain
                .call_contract(kp, game.address, 0, SessionGame::join_payload())
                .unwrap();
            assert!(r.status.is_success(), "{:?}", r.status);
        }
        chain
            .call_contract(&alice, game.address, 0, SessionGame::play_payload(40))
            .unwrap();
        chain
            .call_contract(&bob, game.address, 0, SessionGame::play_payload(70))
            .unwrap();
        chain
            .call_contract(&alice, game.address, 0, SessionGame::play_payload(50))
            .unwrap();
        assert_eq!(
            SessionGame::score(&chain, game.address, alice.address()),
            U256::from_u64(90)
        );
        assert_eq!(
            SessionGame::high_score(&chain, game.address),
            U256::from_u64(90)
        );
    }

    #[test]
    fn guards_reject_bad_moves() {
        let mut chain = Chain::default_chain();
        let alice = chain.funded_keypair(1, 10u128.pow(20));
        let (game, _) = chain.deploy(&alice, Arc::new(SessionGame)).unwrap();

        // Playing before joining is rejected.
        let r = chain
            .call_contract(&alice, game.address, 0, SessionGame::play_payload(10))
            .unwrap();
        assert_eq!(r.revert_reason(), Some("Game: join first"));

        chain
            .call_contract(&alice, game.address, 0, SessionGame::join_payload())
            .unwrap();
        let r = chain
            .call_contract(&alice, game.address, 0, SessionGame::join_payload())
            .unwrap();
        assert_eq!(r.revert_reason(), Some("Game: already joined"));
        let r = chain
            .call_contract(&alice, game.address, 0, SessionGame::play_payload(101))
            .unwrap();
        assert_eq!(r.revert_reason(), Some("Game: move too large"));
    }
}
