//! The Fig. 7 re-entrancy case study: `Bank`, `Attacker`, and `SafeBank`.
//!
//! `Bank` is the paper's "simplified version of TheDAO": deposits are
//! recorded in a balance mapping and `withdraw()` *sends the ether before
//! zeroing the balance*, handing control to the recipient's fallback while
//! the stale balance is still recorded. `Attacker` exploits exactly that:
//! its fallback re-enters `Bank.withdraw()` once, collecting the deposit
//! twice. `SafeBank` applies checks-effects-interactions and is immune.

use smacs_chain::abi::{self, AbiType};
use smacs_chain::{CallContext, Contract, VmError};
use smacs_primitives::{Address, Bytes, H256, U256};

const BALANCE_MAPPING_SLOT: u64 = 0;

fn balance_slot(ctx: &mut CallContext<'_, '_>, owner: Address) -> Result<H256, VmError> {
    ctx.mapping_slot(BALANCE_MAPPING_SLOT, owner.as_bytes())
}

/// The vulnerable bank of Fig. 7.
///
/// Methods:
/// - `addBalance()` (payable) — credit `msg.value` to `balance[msg.sender]`;
/// - `withdraw()` — send `balance[msg.sender]` to `msg.sender` **then**
///   zero the balance (the re-entrancy bug);
/// - `balanceOf(address)` — view.
pub struct Bank;

impl Contract for Bank {
    fn name(&self) -> &'static str {
        "Bank"
    }

    fn code_len(&self) -> usize {
        1_800
    }

    fn execute(&self, ctx: &mut CallContext<'_, '_>) -> Result<Bytes, VmError> {
        let sel = ctx.msg_sig().expect("execute implies selector");
        if sel == abi::selector("addBalance()") {
            let sender = ctx.msg_sender();
            let slot = balance_slot(ctx, sender)?;
            let current = ctx.sload_u256(slot)?;
            let deposit = U256::from_u128(ctx.msg_value());
            ctx.sstore_u256(slot, current.wrapping_add(deposit))?;
            Ok(Bytes::new())
        } else if sel == abi::selector("withdraw()") {
            let sender = ctx.msg_sender();
            let slot = balance_slot(ctx, sender)?;
            let amount = ctx.sload_u256(slot)?;
            let amount_wei = amount.to_u128().unwrap_or(u128::MAX);
            if amount_wei > 0 {
                // Fig. 7 line 8: `msg.sender.call.value(amount)()` — the
                // external call happens BEFORE the balance is zeroed,
                // handing control (and a stale balance) to the recipient's
                // fallback.
                ctx.transfer(sender, amount_wei)?;
            }
            // Fig. 7 line 9 — too late.
            ctx.sstore_u256(slot, U256::ZERO)?;
            Ok(Bytes::new())
        } else if sel == abi::selector("balanceOf(address)") {
            let args = ctx.decode_args(&[AbiType::Address])?;
            let owner = args[0].as_address().expect("decoded as address");
            let slot = balance_slot(ctx, owner)?;
            Ok(Bytes::from(ctx.sload_u256(slot)?.to_be_bytes()))
        } else {
            ctx.revert("Bank: unknown method")
        }
    }

    fn fallback(&self, _ctx: &mut CallContext<'_, '_>) -> Result<(), VmError> {
        // Accept plain deposits (they just raise the contract balance).
        Ok(())
    }
}

/// The fixed bank: checks-effects-interactions (zero the balance before the
/// external call).
pub struct SafeBank;

impl Contract for SafeBank {
    fn name(&self) -> &'static str {
        "SafeBank"
    }

    fn code_len(&self) -> usize {
        1_850
    }

    fn execute(&self, ctx: &mut CallContext<'_, '_>) -> Result<Bytes, VmError> {
        let sel = ctx.msg_sig().expect("execute implies selector");
        if sel == abi::selector("addBalance()") {
            let sender = ctx.msg_sender();
            let slot = balance_slot(ctx, sender)?;
            let current = ctx.sload_u256(slot)?;
            let deposit = U256::from_u128(ctx.msg_value());
            ctx.sstore_u256(slot, current.wrapping_add(deposit))?;
            Ok(Bytes::new())
        } else if sel == abi::selector("withdraw()") {
            let sender = ctx.msg_sender();
            let slot = balance_slot(ctx, sender)?;
            let amount = ctx.sload_u256(slot)?;
            let amount_wei = amount.to_u128().unwrap_or(u128::MAX);
            // Effects first …
            ctx.sstore_u256(slot, U256::ZERO)?;
            // … interaction last: a re-entering fallback sees balance 0.
            if amount_wei > 0 {
                ctx.transfer(sender, amount_wei)?;
            }
            Ok(Bytes::new())
        } else if sel == abi::selector("balanceOf(address)") {
            let args = ctx.decode_args(&[AbiType::Address])?;
            let owner = args[0].as_address().expect("decoded as address");
            let slot = balance_slot(ctx, owner)?;
            Ok(Bytes::from(ctx.sload_u256(slot)?.to_be_bytes()))
        } else {
            ctx.revert("SafeBank: unknown method")
        }
    }

    fn fallback(&self, _ctx: &mut CallContext<'_, '_>) -> Result<(), VmError> {
        Ok(())
    }
}

/// The Fig. 7 attacker. Storage slot 0 holds the `isAttack` re-entry flag;
/// the target bank address is a construction parameter (Solidity's
/// constructor argument `_bank`).
pub struct Attacker {
    bank: Address,
}

const IS_ATTACK_SLOT: H256 = H256([0u8; 32]);

impl Attacker {
    /// An attacker aimed at `bank`.
    pub fn new(bank: Address) -> Self {
        Attacker { bank }
    }

    /// The ABI payload for `Bank.withdraw()`.
    pub fn withdraw_payload() -> Vec<u8> {
        abi::encode_call("withdraw()", &[])
    }
}

impl Contract for Attacker {
    fn name(&self) -> &'static str {
        "Attacker"
    }

    fn code_len(&self) -> usize {
        1_200
    }

    fn constructor(&self, ctx: &mut CallContext<'_, '_>) -> Result<(), VmError> {
        // isAttack = true (Fig. 7 constructor).
        ctx.sstore_u256(IS_ATTACK_SLOT, U256::ONE)
    }

    fn execute(&self, ctx: &mut CallContext<'_, '_>) -> Result<Bytes, VmError> {
        let sel = ctx.msg_sig().expect("execute implies selector");
        if sel == abi::selector("deposit()") {
            // Fig. 7: `bank.call.value(2).addBalance()` — deposit 2 wei.
            ctx.call(self.bank, 2, abi::encode_call("addBalance()", &[]))?;
            Ok(Bytes::new())
        } else if sel == abi::selector("withdraw()") {
            ctx.call(self.bank, 0, Self::withdraw_payload())?;
            Ok(Bytes::new())
        } else {
            ctx.revert("Attacker: unknown method")
        }
    }

    fn fallback(&self, ctx: &mut CallContext<'_, '_>) -> Result<(), VmError> {
        // Fig. 7's payable fallback: on the first incoming transfer,
        // re-enter Bank.withdraw() while the outer withdraw is mid-flight.
        let is_attack = ctx.sload_u256(IS_ATTACK_SLOT)?;
        if is_attack == U256::ONE {
            ctx.sstore_u256(IS_ATTACK_SLOT, U256::ZERO)?;
            ctx.call(self.bank, 0, Self::withdraw_payload())?;
        }
        Ok(())
    }
}

/// An *adaptive* attacker targeting a SMACS-protected bank: it forwards
/// the client-supplied token array on its way in, stashes the exact
/// token-bearing calldata in storage, and replays it from its fallback to
/// re-enter `withdraw()`. Against one-time tokens the replay fails — the
/// outer frame already consumed the bitmap index — which is precisely the
/// paper's Example 4 defense. Storage layout: slot 0 = `isAttack`,
/// keccak-derived slots hold the stashed calldata (length + 32-byte
/// chunks).
pub struct SmacsAwareAttacker {
    bank: Address,
}

impl SmacsAwareAttacker {
    /// An adaptive attacker aimed at `bank`.
    pub fn new(bank: Address) -> Self {
        SmacsAwareAttacker { bank }
    }

    fn stash_len_slot() -> H256 {
        smacs_crypto::keccak256(b"attacker.stash.len")
    }

    fn stash_chunk_slot(i: u64) -> H256 {
        smacs_crypto::keccak256_concat(&[b"attacker.stash.chunk", &i.to_be_bytes()])
    }

    fn stash(ctx: &mut CallContext<'_, '_>, data: &[u8]) -> Result<(), VmError> {
        ctx.sstore_u256(Self::stash_len_slot(), U256::from(data.len()))?;
        for (i, chunk) in data.chunks(32).enumerate() {
            let mut word = [0u8; 32];
            word[..chunk.len()].copy_from_slice(chunk);
            ctx.sstore(Self::stash_chunk_slot(i as u64), H256(word))?;
        }
        Ok(())
    }

    fn unstash(ctx: &mut CallContext<'_, '_>) -> Result<Bytes, VmError> {
        let len = ctx.sload_u256(Self::stash_len_slot())?.low_u64() as usize;
        let mut data = Vec::with_capacity(len);
        for i in 0..len.div_ceil(32) {
            let word = ctx.sload(Self::stash_chunk_slot(i as u64))?;
            data.extend_from_slice(&word.0);
        }
        data.truncate(len);
        Ok(Bytes::from(data))
    }
}

impl Contract for SmacsAwareAttacker {
    fn name(&self) -> &'static str {
        "SmacsAwareAttacker"
    }

    fn code_len(&self) -> usize {
        2_000
    }

    fn constructor(&self, ctx: &mut CallContext<'_, '_>) -> Result<(), VmError> {
        ctx.sstore_u256(IS_ATTACK_SLOT, U256::ONE)
    }

    fn execute(&self, ctx: &mut CallContext<'_, '_>) -> Result<Bytes, VmError> {
        let sel = ctx.msg_sig().expect("execute implies selector");
        if sel == abi::selector("deposit()") {
            // Forward the caller's token array to the shielded bank.
            smacs_core::verify::forward_call(
                ctx,
                self.bank,
                2,
                &abi::encode_call("addBalance()", &[]),
            )?;
            Ok(Bytes::new())
        } else if sel == abi::selector("withdraw()") {
            // Build the exact token-bearing calldata for Bank.withdraw(),
            // stash it for the fallback replay, then strike.
            let data = ctx.msg_data_bytes();
            let (_, tokens) = smacs_token::split_tokens(&data)
                .map_err(|e| VmError::Revert(format!("attacker: {e}")))?;
            let bank_call = smacs_token::append_tokens(&Self::withdraw_payload_inner(), &tokens);
            Self::stash(ctx, &bank_call)?;
            ctx.call(self.bank, 0, bank_call)?;
            Ok(Bytes::new())
        } else {
            ctx.revert("SmacsAwareAttacker: unknown method")
        }
    }

    fn fallback(&self, ctx: &mut CallContext<'_, '_>) -> Result<(), VmError> {
        let is_attack = ctx.sload_u256(IS_ATTACK_SLOT)?;
        if is_attack == U256::ONE {
            ctx.sstore_u256(IS_ATTACK_SLOT, U256::ZERO)?;
            let replay = Self::unstash(ctx)?;
            // Re-enter Bank.withdraw() with the stashed (already used)
            // token.
            ctx.call(self.bank, 0, replay)?;
        }
        Ok(())
    }
}

impl SmacsAwareAttacker {
    fn withdraw_payload_inner() -> Vec<u8> {
        abi::encode_call("withdraw()", &[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smacs_chain::Chain;
    use std::sync::Arc;

    /// The attack end to end on an *unprotected* Bank: the attacker
    /// deposits 2 wei and withdraws 4 — the paper's "effectively moves all
    /// ether from Bank".
    #[test]
    fn reentrancy_attack_drains_unprotected_bank() {
        let mut chain = Chain::default_chain();
        let owner = chain.funded_keypair(1, 10u128.pow(20));
        let victim = chain.funded_keypair(2, 10u128.pow(20));
        let attacker_eoa = chain.funded_keypair(3, 10u128.pow(20));

        let (bank, _) = chain.deploy(&owner, Arc::new(Bank)).unwrap();
        // An honest victim deposits 2 wei.
        let r = chain
            .call_contract(
                &victim,
                bank.address,
                2,
                abi::encode_call("addBalance()", &[]),
            )
            .unwrap();
        assert!(r.status.is_success());

        let (attacker, _) = chain
            .deploy(&attacker_eoa, Arc::new(Attacker::new(bank.address)))
            .unwrap();
        chain.fund_account(attacker.address, 10); // gas money for value calls
        let r = chain
            .call_contract(
                &attacker_eoa,
                attacker.address,
                2,
                abi::encode_call("deposit()", &[]),
            )
            .unwrap();
        assert!(r.status.is_success(), "{:?}", r.status);
        assert_eq!(chain.state().balance(bank.address), 4);

        // The attack: withdraw re-enters and collects 2 + 2.
        let before = chain.state().balance(attacker.address);
        let r = chain
            .call_contract(
                &attacker_eoa,
                attacker.address,
                0,
                abi::encode_call("withdraw()", &[]),
            )
            .unwrap();
        assert!(r.status.is_success(), "{:?}", r.status);
        let after = chain.state().balance(attacker.address);
        assert_eq!(
            after - before,
            4,
            "attacker should have drained the victim's 2 wei too"
        );
        assert_eq!(chain.state().balance(bank.address), 0);
        // The trace shows Bank re-entered.
        assert!(r.trace.has_reentrancy(bank.address));
    }

    #[test]
    fn safe_bank_resists_the_same_attack() {
        let mut chain = Chain::default_chain();
        let owner = chain.funded_keypair(1, 10u128.pow(20));
        let victim = chain.funded_keypair(2, 10u128.pow(20));
        let attacker_eoa = chain.funded_keypair(3, 10u128.pow(20));

        let (bank, _) = chain.deploy(&owner, Arc::new(SafeBank)).unwrap();
        chain
            .call_contract(
                &victim,
                bank.address,
                2,
                abi::encode_call("addBalance()", &[]),
            )
            .unwrap();
        let (attacker, _) = chain
            .deploy(&attacker_eoa, Arc::new(Attacker::new(bank.address)))
            .unwrap();
        chain.fund_account(attacker.address, 10);
        chain
            .call_contract(
                &attacker_eoa,
                attacker.address,
                2,
                abi::encode_call("deposit()", &[]),
            )
            .unwrap();

        let before = chain.state().balance(attacker.address);
        let r = chain
            .call_contract(
                &attacker_eoa,
                attacker.address,
                0,
                abi::encode_call("withdraw()", &[]),
            )
            .unwrap();
        assert!(r.status.is_success(), "{:?}", r.status);
        let after = chain.state().balance(attacker.address);
        // Only the attacker's own 2 wei come back; the re-entrant call saw
        // balance 0.
        assert_eq!(after - before, 2);
        assert_eq!(chain.state().balance(bank.address), 2); // victim's deposit intact
    }

    #[test]
    fn honest_deposit_withdraw_cycle() {
        let mut chain = Chain::default_chain();
        let owner = chain.funded_keypair(1, 10u128.pow(20));
        let user = chain.funded_keypair(2, 10u128.pow(20));
        for bank_logic in [Arc::new(Bank) as Arc<dyn Contract>, Arc::new(SafeBank)] {
            let (bank, _) = chain.deploy(&owner, bank_logic).unwrap();
            chain
                .call_contract(
                    &user,
                    bank.address,
                    500,
                    abi::encode_call("addBalance()", &[]),
                )
                .unwrap();
            assert_eq!(chain.state().balance(bank.address), 500);
            let r = chain
                .call_contract(&user, bank.address, 0, abi::encode_call("withdraw()", &[]))
                .unwrap();
            assert!(r.status.is_success());
            assert_eq!(chain.state().balance(bank.address), 0);
        }
    }

    #[test]
    fn balance_of_view() {
        let mut chain = Chain::default_chain();
        let owner = chain.funded_keypair(1, 10u128.pow(20));
        let user = chain.funded_keypair(2, 10u128.pow(20));
        let (bank, _) = chain.deploy(&owner, Arc::new(Bank)).unwrap();
        chain
            .call_contract(
                &user,
                bank.address,
                123,
                abi::encode_call("addBalance()", &[]),
            )
            .unwrap();
        let (result, _, _, _) = chain.dry_run(
            user.address(),
            bank.address,
            0,
            abi::encode_call(
                "balanceOf(address)",
                &[smacs_chain::AbiValue::Address(user.address())],
            ),
        );
        assert_eq!(
            U256::from_be_slice(&result.unwrap()).unwrap(),
            U256::from_u64(123)
        );
    }
}
