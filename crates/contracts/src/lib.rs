//! Example and benchmark contracts for the SMACS reproduction.
//!
//! - [`bank`] — the Fig. 7 re-entrancy case study: the vulnerable `Bank`
//!   (a simplified TheDAO), the `Attacker` that drains it through its
//!   fallback, and a `SafeBank` fixed with checks-effects-interactions;
//! - [`token_sale`] — the §II-D motivation: a token sale restricted to
//!   approved users, in both the SMACS form (access control off-chain) and
//!   the on-chain-whitelist baseline whose costs the paper quotes
//!   (Bluzelle's 9.345 ETH for 7 473 addresses);
//! - [`callchain`] — the Fig. 5 chain `SC_A → SC_B → SC_C`, parameterized
//!   to arbitrary depth for Table III / Fig. 8;
//! - [`hydra_heads`] — N structurally different implementations of one
//!   intended logic (plus a deliberately buggy head) for the §V-A Hydra
//!   uniformity rule;
//! - [`bench_target`] — the minimal application contract the gas tables
//!   are measured against.

pub mod bank;
pub mod bench_target;
pub mod callchain;
pub mod hydra_heads;
pub mod token_sale;

pub use bank::{Attacker, Bank, SafeBank, SmacsAwareAttacker};
pub use bench_target::BenchTarget;
pub use callchain::ChainLink;
pub use hydra_heads::{AdderHead, BuggyAdderHead, HydraStyle};
pub use token_sale::{OnChainWhitelistSale, SmacsSale};
