//! Example and benchmark contracts for the SMACS reproduction.
//!
//! - [`bank`] — the Fig. 7 re-entrancy case study: the vulnerable `Bank`
//!   (a simplified TheDAO), the `Attacker` that drains it through its
//!   fallback, and a `SafeBank` fixed with checks-effects-interactions;
//! - [`token_sale`] — the §II-D motivation: a token sale restricted to
//!   approved users, in both the SMACS form (access control off-chain) and
//!   the on-chain-whitelist baseline whose costs the paper quotes
//!   (Bluzelle's 9.345 ETH for 7 473 addresses);
//! - [`callchain`] — the Fig. 5 chain `SC_A → SC_B → SC_C`, parameterized
//!   to arbitrary depth for Table III / Fig. 8;
//! - [`hydra_heads`] — N structurally different implementations of one
//!   intended logic (plus a deliberately buggy head) for the §V-A Hydra
//!   uniformity rule;
//! - [`bench_target`] — the minimal application contract the gas tables
//!   are measured against.
//!
//! The scenario corpus (PR 7) adds untested rule shapes for the driver and
//! load generator in `smacs-driver`:
//!
//! - [`amm`] — a constant-product AMM ([`SmacsAmm`], argument-token price
//!   bounds on `swap(amountIn, minOut)`) plus a [`LendingPool`] composing
//!   cross-contract through `forward_call` (DeFi composition: one
//!   transaction needs tokens for both shields);
//! - [`oracle`] — [`PriceOracle`], whose only write method is authorized
//!   purely by a TS sender whitelist (oracle-update authorization);
//! - [`game`] — [`SessionGame`], gated by short-lifetime method tokens
//!   acting as sessions;
//! - [`airdrop`] — [`Airdrop`], one-time `claim()` tokens at scale
//!   through the replicated counter.

pub mod airdrop;
pub mod amm;
pub mod bank;
pub mod bench_target;
pub mod callchain;
pub mod game;
pub mod hydra_heads;
pub mod oracle;
pub mod token_sale;

pub use airdrop::Airdrop;
pub use amm::{LendingPool, SmacsAmm};
pub use bank::{Attacker, Bank, SafeBank, SmacsAwareAttacker};
pub use bench_target::BenchTarget;
pub use callchain::ChainLink;
pub use game::SessionGame;
pub use hydra_heads::{AdderHead, BuggyAdderHead, HydraStyle};
pub use oracle::PriceOracle;
pub use token_sale::{OnChainWhitelistSale, SmacsSale};
