//! The Fig. 5 call chain: `SC_A → SC_B → SC_C`, generalized to any depth.
//!
//! Each link bumps its own hop counter and forwards to the next link. When
//! links are SMACS-shielded, forwarding goes through
//! [`smacs_core::verify::forward_call`], which re-attaches the
//! transaction's token array so the next contract can extract its own token
//! (§IV-D).

use smacs_chain::abi::{self, AbiType};
use smacs_chain::{CallContext, Contract, VmError};
use smacs_primitives::{Address, Bytes, H256, U256};

/// One link of the chain. `next = None` terminates it.
pub struct ChainLink {
    next: Option<Address>,
}

impl ChainLink {
    /// Canonical signature of the chain-walking method. It carries two
    /// uint256 arguments so argument-token payloads match the Table II
    /// workload (the paper measures the same method across the chain).
    pub const POKE_SIG: &'static str = "poke(uint256,uint256)";

    /// A terminal link.
    pub fn terminal() -> Self {
        ChainLink { next: None }
    }

    /// A link forwarding to `next`.
    pub fn forwarding_to(next: Address) -> Self {
        ChainLink { next: Some(next) }
    }

    /// The `poke(a, b)` payload used by every hop.
    pub fn poke_payload() -> Vec<u8> {
        abi::encode_call(
            Self::POKE_SIG,
            &[
                smacs_chain::AbiValue::Uint(U256::from_u64(3)),
                smacs_chain::AbiValue::Uint(U256::from_u64(4)),
            ],
        )
    }

    /// Read a link's hop counter from chain state.
    pub fn hops(chain: &smacs_chain::Chain, link: Address) -> U256 {
        chain.state().storage_get_u256(link, H256::ZERO)
    }
}

impl Contract for ChainLink {
    fn name(&self) -> &'static str {
        "ChainLink"
    }

    fn code_len(&self) -> usize {
        1_100
    }

    fn execute(&self, ctx: &mut CallContext<'_, '_>) -> Result<Bytes, VmError> {
        let sel = ctx.msg_sig().expect("execute implies selector");
        if sel == abi::selector(Self::POKE_SIG) {
            let args = ctx.decode_args(&[AbiType::Uint, AbiType::Uint])?;
            let _ = (args[0].as_uint(), args[1].as_uint());
            let hops = ctx.sload_u256(H256::ZERO)?;
            ctx.sstore_u256(H256::ZERO, hops.wrapping_add(U256::ONE))?;
            if let Some(next) = self.next {
                // Forward with the token array re-attached so the next
                // SMACS-enabled link finds its token.
                smacs_core::verify::forward_call(ctx, next, 0, &Self::poke_payload())?;
            }
            Ok(Bytes::new())
        } else {
            ctx.revert("ChainLink: unknown method")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smacs_chain::Chain;
    use smacs_core::client::ClientWallet;
    use smacs_core::owner::{OwnerToolkit, ShieldParams};
    use smacs_token::{signing_digest, PayloadContext, Token, TokenType, NO_INDEX};
    use std::sync::Arc;

    /// Deploy a shielded chain of `depth` links; returns addresses from
    /// entry (SC_A) to terminal.
    fn deploy_chain(chain: &mut Chain, toolkit: &OwnerToolkit, depth: usize) -> Vec<Address> {
        let params = ShieldParams {
            token_lifetime_secs: 3600,
            max_tx_per_second: 0.35,
            disable_one_time: false,
        };
        let mut addrs: Vec<Address> = Vec::new();
        let mut next: Option<Address> = None;
        for _ in 0..depth {
            let link = match next {
                Some(addr) => ChainLink::forwarding_to(addr),
                None => ChainLink::terminal(),
            };
            let (deployed, _) = toolkit
                .deploy_shielded(chain, Arc::new(link), &params)
                .unwrap();
            next = Some(deployed.address);
            addrs.push(deployed.address);
        }
        addrs.reverse(); // entry first
        addrs
    }

    fn method_token(
        toolkit: &OwnerToolkit,
        sender: Address,
        contract: Address,
        expire: u32,
    ) -> Token {
        let ctx = PayloadContext {
            sender,
            contract,
            selector: Some(abi::selector(ChainLink::POKE_SIG)),
            calldata: None,
        };
        let digest = signing_digest(TokenType::Method, expire, NO_INDEX, &ctx);
        Token {
            ttype: TokenType::Method,
            expire,
            index: NO_INDEX,
            signature: toolkit.ts_keypair().sign_digest(&digest),
        }
    }

    #[test]
    fn three_link_chain_with_tokens_for_each() {
        let mut chain = Chain::default_chain();
        let owner = chain.funded_keypair(1, 10u128.pow(24));
        let client_kp = chain.funded_keypair(2, 10u128.pow(24));
        let toolkit = OwnerToolkit::new(owner, smacs_crypto::Keypair::from_seed(500));
        let links = deploy_chain(&mut chain, &toolkit, 3);
        let client = ClientWallet::new(client_kp);
        let expire = (chain.pending_env().timestamp + 3000) as u32;

        // One method token per contract on the chain (Fig. 5's three TSes
        // collapse to one toolkit here; the array format is identical).
        let tokens: Vec<(Address, Token)> = links
            .iter()
            .map(|&addr| (addr, method_token(&toolkit, client.address(), addr, expire)))
            .collect();

        let r = client
            .call_with_tokens(&mut chain, links[0], 0, &ChainLink::poke_payload(), &tokens)
            .unwrap();
        assert!(r.status.is_success(), "{:?}", r.status);
        for &link in &links {
            assert_eq!(ChainLink::hops(&chain, link), U256::ONE, "link {link}");
        }
        // The trace reaches depth 2 (0-indexed).
        assert_eq!(r.trace.max_depth(), 2);
    }

    #[test]
    fn missing_middle_token_stops_the_chain() {
        let mut chain = Chain::default_chain();
        let owner = chain.funded_keypair(1, 10u128.pow(24));
        let client_kp = chain.funded_keypair(2, 10u128.pow(24));
        let toolkit = OwnerToolkit::new(owner, smacs_crypto::Keypair::from_seed(500));
        let links = deploy_chain(&mut chain, &toolkit, 3);
        let client = ClientWallet::new(client_kp);
        let expire = (chain.pending_env().timestamp + 3000) as u32;

        // Tokens for the first and third links only.
        let tokens = vec![
            (
                links[0],
                method_token(&toolkit, client.address(), links[0], expire),
            ),
            (
                links[2],
                method_token(&toolkit, client.address(), links[2], expire),
            ),
        ];
        let r = client
            .call_with_tokens(&mut chain, links[0], 0, &ChainLink::poke_payload(), &tokens)
            .unwrap();
        // SC_B rejects; the whole transaction reverts (atomicity), so not
        // even SC_A's hop counter survives.
        assert_eq!(r.revert_reason(), Some("SMACS: no token for this contract"));
        for &link in &links {
            assert_eq!(ChainLink::hops(&chain, link), U256::ZERO);
        }
    }

    #[test]
    fn unshielded_chain_works_without_tokens() {
        let mut chain = Chain::default_chain();
        let owner = chain.funded_keypair(1, 10u128.pow(24));
        let toolkit = OwnerToolkit::new(owner, smacs_crypto::Keypair::from_seed(500));
        // Legacy (unshielded) links: forward_call still works — it simply
        // finds an empty token array to re-attach… so build the calldata
        // with an empty array appended.
        let (c, _) = toolkit
            .deploy_legacy(&mut chain, Arc::new(ChainLink::terminal()))
            .unwrap();
        let (b, _) = toolkit
            .deploy_legacy(&mut chain, Arc::new(ChainLink::forwarding_to(c.address)))
            .unwrap();
        let (a, _) = toolkit
            .deploy_legacy(&mut chain, Arc::new(ChainLink::forwarding_to(b.address)))
            .unwrap();
        let data = smacs_token::append_tokens(&ChainLink::poke_payload(), &Default::default());
        let r = chain
            .call_contract(toolkit.owner(), a.address, 0, data)
            .unwrap();
        assert!(r.status.is_success(), "{:?}", r.status);
        for addr in [a.address, b.address, c.address] {
            assert_eq!(ChainLink::hops(&chain, addr), U256::ONE);
        }
    }
}
