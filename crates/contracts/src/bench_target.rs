//! The minimal application contract the gas experiments measure against.
//!
//! Its single business method does what a typical protected method does —
//! one storage write plus an event — so the unlabeled ("Misc") gas of a
//! measured transaction contains base cost + calldata + a realistic method
//! body, mirroring the composition of the paper's Table II "Misc" row.

use smacs_chain::abi::{self, AbiType};
use smacs_chain::{CallContext, Contract, VmError};
use smacs_primitives::{Bytes, H256, U256};

/// Benchmark target: `ping(uint256,uint256)` accumulates `a + b` into slot
/// 0 and emits `Pinged(uint256)`; `total()` reads it back.
pub struct BenchTarget;

impl BenchTarget {
    /// Canonical signature of the measured method.
    pub const PING_SIG: &'static str = "ping(uint256,uint256)";

    /// The payload calldata the experiments bind argument tokens to.
    pub fn ping_payload(a: u64, b: u64) -> Vec<u8> {
        abi::encode_call(
            Self::PING_SIG,
            &[
                smacs_chain::AbiValue::Uint(U256::from_u64(a)),
                smacs_chain::AbiValue::Uint(U256::from_u64(b)),
            ],
        )
    }
}

impl Contract for BenchTarget {
    fn name(&self) -> &'static str {
        "BenchTarget"
    }

    fn code_len(&self) -> usize {
        900
    }

    fn execute(&self, ctx: &mut CallContext<'_, '_>) -> Result<Bytes, VmError> {
        let sel = ctx.msg_sig().expect("execute implies selector");
        if sel == abi::selector(Self::PING_SIG) {
            let args = ctx.decode_args(&[AbiType::Uint, AbiType::Uint])?;
            let a = args[0].as_uint().expect("decoded uint");
            let b = args[1].as_uint().expect("decoded uint");
            let total = ctx.sload_u256(H256::ZERO)?;
            let new_total = total.wrapping_add(a).wrapping_add(b);
            ctx.sstore_u256(H256::ZERO, new_total)?;
            ctx.emit_event("Pinged(uint256)", new_total.to_be_bytes().to_vec())?;
            Ok(Bytes::from(new_total.to_be_bytes()))
        } else if sel == abi::selector("total()") {
            Ok(Bytes::from(ctx.sload_u256(H256::ZERO)?.to_be_bytes()))
        } else {
            ctx.revert("BenchTarget: unknown method")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smacs_chain::Chain;
    use std::sync::Arc;

    #[test]
    fn ping_accumulates_and_logs() {
        let mut chain = Chain::default_chain();
        let owner = chain.funded_keypair(1, 10u128.pow(20));
        let (target, _) = chain.deploy(&owner, Arc::new(BenchTarget)).unwrap();
        let r = chain
            .call_contract(&owner, target.address, 0, BenchTarget::ping_payload(2, 3))
            .unwrap();
        assert!(r.status.is_success());
        assert_eq!(r.logs.len(), 1);
        assert_eq!(
            U256::from_be_slice(&r.return_data).unwrap(),
            U256::from_u64(5)
        );
        let r = chain
            .call_contract(&owner, target.address, 0, BenchTarget::ping_payload(10, 0))
            .unwrap();
        assert_eq!(
            U256::from_be_slice(&r.return_data).unwrap(),
            U256::from_u64(15)
        );
    }
}
