//! Hydra heads (§V-A): N independent implementations of one intended
//! logic.
//!
//! "multiple independent program instances written in different programming
//! languages but with the same intended high-level logic run in parallel" —
//! here, structurally different Rust implementations of a running-total
//! adder, plus a deliberately buggy head whose output diverges on a
//! specific input. The Hydra uniformity rule (in `smacs-verifiers`) runs
//! all heads on forked testnets and issues a token only when every head
//! produces the identical output.

use smacs_chain::abi::{self, AbiType};
use smacs_chain::{CallContext, Contract, VmError};
use smacs_primitives::{Bytes, H256, U256};

/// Which structural variant a head uses — stands in for the paper's
/// "different programming languages".
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum HydraStyle {
    /// Direct `total += x`.
    Direct,
    /// Accumulate via doubling/halving decomposition.
    ShiftAdd,
    /// Accumulate through a subtraction identity (`total = total − (−x)`,
    /// in wrapping arithmetic).
    TwosComplement,
}

/// The adder logic every head implements: `add(uint256)` updates a running
/// total and returns it; `total()` reads it.
pub struct AdderHead {
    style: HydraStyle,
}

impl AdderHead {
    /// Canonical signature of the measured method.
    pub const ADD_SIG: &'static str = "add(uint256)";

    /// A head of the given style.
    pub fn new(style: HydraStyle) -> Self {
        AdderHead { style }
    }

    /// Payload for `add(x)`.
    pub fn add_payload(x: u64) -> Vec<u8> {
        abi::encode_call(
            Self::ADD_SIG,
            &[smacs_chain::AbiValue::Uint(U256::from_u64(x))],
        )
    }

    fn combine(&self, total: U256, x: U256) -> U256 {
        match self.style {
            HydraStyle::Direct => total.wrapping_add(x),
            HydraStyle::ShiftAdd => {
                // Sum x into total one binary digit at a time.
                let mut acc = total;
                let mut addend = x;
                let mut unit = U256::ONE;
                while !addend.is_zero() {
                    if addend.bit(0) {
                        acc = acc.wrapping_add(unit);
                    }
                    addend = addend >> 1;
                    unit = unit << 1;
                }
                acc
            }
            HydraStyle::TwosComplement => {
                // total − (2^256 − x) ≡ total + x (mod 2^256).
                let neg_x = U256::ZERO.wrapping_sub(x);
                total.wrapping_sub(neg_x)
            }
        }
    }
}

impl Contract for AdderHead {
    fn name(&self) -> &'static str {
        match self.style {
            HydraStyle::Direct => "AdderHead(direct)",
            HydraStyle::ShiftAdd => "AdderHead(shift-add)",
            HydraStyle::TwosComplement => "AdderHead(twos-complement)",
        }
    }

    fn code_len(&self) -> usize {
        1_000
    }

    fn execute(&self, ctx: &mut CallContext<'_, '_>) -> Result<Bytes, VmError> {
        let sel = ctx.msg_sig().expect("execute implies selector");
        if sel == abi::selector(Self::ADD_SIG) {
            let args = ctx.decode_args(&[AbiType::Uint])?;
            let x = args[0].as_uint().expect("decoded uint");
            let total = ctx.sload_u256(H256::ZERO)?;
            let new_total = self.combine(total, x);
            ctx.sstore_u256(H256::ZERO, new_total)?;
            Ok(Bytes::from(new_total.to_be_bytes()))
        } else if sel == abi::selector("total()") {
            Ok(Bytes::from(ctx.sload_u256(H256::ZERO)?.to_be_bytes()))
        } else {
            ctx.revert("AdderHead: unknown method")
        }
    }
}

/// A head with a planted bug: `add(13)` drops the carry — "it is likely
/// that certain erroneous state is triggered for some heads" (§V-A).
pub struct BuggyAdderHead;

impl BuggyAdderHead {
    /// The input that triggers the divergence.
    pub const TRIGGER: u64 = 13;
}

impl Contract for BuggyAdderHead {
    fn name(&self) -> &'static str {
        "BuggyAdderHead"
    }

    fn code_len(&self) -> usize {
        1_000
    }

    fn execute(&self, ctx: &mut CallContext<'_, '_>) -> Result<Bytes, VmError> {
        let sel = ctx.msg_sig().expect("execute implies selector");
        if sel == abi::selector(AdderHead::ADD_SIG) {
            let args = ctx.decode_args(&[AbiType::Uint])?;
            let x = args[0].as_uint().expect("decoded uint");
            let total = ctx.sload_u256(H256::ZERO)?;
            let new_total = if x == U256::from_u64(Self::TRIGGER) {
                total.wrapping_add(x).wrapping_sub(U256::ONE) // off by one
            } else {
                total.wrapping_add(x)
            };
            ctx.sstore_u256(H256::ZERO, new_total)?;
            Ok(Bytes::from(new_total.to_be_bytes()))
        } else if sel == abi::selector("total()") {
            Ok(Bytes::from(ctx.sload_u256(H256::ZERO)?.to_be_bytes()))
        } else {
            ctx.revert("BuggyAdderHead: unknown method")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smacs_chain::Chain;
    use std::sync::Arc;

    fn run_head(logic: Arc<dyn Contract>, inputs: &[u64]) -> Vec<U256> {
        let mut chain = Chain::default_chain();
        let owner = chain.funded_keypair(1, 10u128.pow(20));
        let (head, _) = chain.deploy(&owner, logic).unwrap();
        inputs
            .iter()
            .map(|&x| {
                let r = chain
                    .call_contract(&owner, head.address, 0, AdderHead::add_payload(x))
                    .unwrap();
                assert!(r.status.is_success());
                U256::from_be_slice(&r.return_data).unwrap()
            })
            .collect()
    }

    #[test]
    fn all_honest_heads_agree() {
        let inputs = [1u64, 2, 1000, 0, 99999, 13];
        let direct = run_head(Arc::new(AdderHead::new(HydraStyle::Direct)), &inputs);
        let shift = run_head(Arc::new(AdderHead::new(HydraStyle::ShiftAdd)), &inputs);
        let twos = run_head(
            Arc::new(AdderHead::new(HydraStyle::TwosComplement)),
            &inputs,
        );
        assert_eq!(direct, shift);
        assert_eq!(direct, twos);
        // And the totals are right.
        let expected: u64 = inputs.iter().sum();
        assert_eq!(*direct.last().unwrap(), U256::from_u64(expected));
    }

    #[test]
    fn buggy_head_diverges_only_on_trigger() {
        let benign = [1u64, 2, 1000];
        assert_eq!(
            run_head(Arc::new(BuggyAdderHead), &benign),
            run_head(Arc::new(AdderHead::new(HydraStyle::Direct)), &benign)
        );
        let trigger = [BuggyAdderHead::TRIGGER];
        assert_ne!(
            run_head(Arc::new(BuggyAdderHead), &trigger),
            run_head(Arc::new(AdderHead::new(HydraStyle::Direct)), &trigger)
        );
    }
}
