//! DeFi composition scenario: a constant-product AMM plus a lending pool
//! that routes through it — the corpus workload for *cross-contract* token
//! checks (§IV-D) and *argument-token price bounds* (§IV-E).
//!
//! - [`SmacsAmm`] swaps asset X for asset Y against on-chain reserves.
//!   `swap(amountIn, minOut)` is the argument-token surface: the TS binds a
//!   token to the exact calldata, so an ACR can blacklist `minOut = 0`
//!   (unbounded slippage) or whitelist approved trade sizes without the
//!   contract storing any list.
//! - [`LendingPool`] composes: `leverageSwap(amountIn, minOut)` forwards
//!   the swap to its configured AMM through
//!   [`smacs_core::verify::forward_call`], so a transaction needs a valid
//!   token for *both* contracts — the Fig. 5 call-chain shape applied to a
//!   DeFi composition rather than a synthetic chain.
//!
//! Reserves use a demo scale (wei-denominated virtual balances); the
//! interesting behaviour is the access-control surface, not the curve.

use smacs_chain::abi::{self, AbiType};
use smacs_chain::{CallContext, Contract, VmError};
use smacs_primitives::{Address, Bytes, H256, U256};

/// Off-chain mirror of [`CallContext::mapping_slot`]: `keccak256(key ‖ base)`.
fn mapping_slot_of(base: u64, key: &[u8]) -> H256 {
    let base_word = U256::from_u64(base).to_be_bytes();
    smacs_crypto::keccak256_concat(&[key, &base_word])
}

/// Storage slot of reserve X.
const RESERVE_X_SLOT: H256 = H256([
    0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,
]);
/// Storage slot of reserve Y.
const RESERVE_Y_SLOT: H256 = H256([
    0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1,
]);
/// Mapping slot: trader address → cumulative Y received.
const BALANCE_Y_MAPPING_SLOT: u64 = 2;
/// Storage slot counting executed swaps.
const SWAP_COUNT_SLOT: H256 = H256([
    0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 3,
]);

/// A constant-product market maker over two virtual reserves.
///
/// Methods:
/// - `seed(uint256,uint256)` — set initial reserves (demo: anyone with a
///   token; ACRs decide who that is);
/// - `swap(uint256,uint256)` — trade `amountIn` of X for Y, reverting if
///   the constant-product output falls below `minOut`;
/// - `quote(uint256)` — view: the Y output for a given X input;
/// - `reserves()` — view: both reserves, ABI-encoded.
pub struct SmacsAmm;

impl SmacsAmm {
    /// Canonical signature of the swap method (the argument-token surface).
    pub const SWAP_SIG: &'static str = "swap(uint256,uint256)";
    /// Canonical signature of the reserve-seeding method.
    pub const SEED_SIG: &'static str = "seed(uint256,uint256)";

    /// Payload for `seed(x, y)`.
    pub fn seed_payload(x: u64, y: u64) -> Vec<u8> {
        abi::encode_call(
            Self::SEED_SIG,
            &[
                smacs_chain::AbiValue::Uint(U256::from_u64(x)),
                smacs_chain::AbiValue::Uint(U256::from_u64(y)),
            ],
        )
    }

    /// Payload for `swap(amount_in, min_out)`.
    pub fn swap_payload(amount_in: u64, min_out: u64) -> Vec<u8> {
        abi::encode_call(
            Self::SWAP_SIG,
            &[
                smacs_chain::AbiValue::Uint(U256::from_u64(amount_in)),
                smacs_chain::AbiValue::Uint(U256::from_u64(min_out)),
            ],
        )
    }

    /// Constant-product output: `y_out = reserve_y·dx / (reserve_x + dx)`.
    fn output(reserve_x: U256, reserve_y: U256, dx: U256) -> U256 {
        let denom = reserve_x.wrapping_add(dx);
        if denom.is_zero() {
            return U256::ZERO;
        }
        reserve_y.wrapping_mul(dx).div_evm(denom)
    }

    /// Read a trader's cumulative Y balance from chain state.
    pub fn balance_y(chain: &smacs_chain::Chain, amm: Address, trader: Address) -> U256 {
        chain.state().storage_get_u256(
            amm,
            mapping_slot_of(BALANCE_Y_MAPPING_SLOT, trader.as_bytes()),
        )
    }

    /// Read the executed-swap counter from chain state.
    pub fn swap_count(chain: &smacs_chain::Chain, amm: Address) -> U256 {
        chain.state().storage_get_u256(amm, SWAP_COUNT_SLOT)
    }
}

impl Contract for SmacsAmm {
    fn name(&self) -> &'static str {
        "SmacsAmm"
    }

    fn code_len(&self) -> usize {
        2_100
    }

    fn execute(&self, ctx: &mut CallContext<'_, '_>) -> Result<Bytes, VmError> {
        let sel = ctx.msg_sig().expect("execute implies selector");
        if sel == abi::selector(Self::SEED_SIG) {
            let args = ctx.decode_args(&[AbiType::Uint, AbiType::Uint])?;
            let x = args[0].as_uint().expect("decoded uint");
            let y = args[1].as_uint().expect("decoded uint");
            ctx.require(!x.is_zero() && !y.is_zero(), "AMM: empty reserves")?;
            ctx.sstore_u256(RESERVE_X_SLOT, x)?;
            ctx.sstore_u256(RESERVE_Y_SLOT, y)?;
            Ok(Bytes::new())
        } else if sel == abi::selector(Self::SWAP_SIG) {
            let args = ctx.decode_args(&[AbiType::Uint, AbiType::Uint])?;
            let dx = args[0].as_uint().expect("decoded uint");
            let min_out = args[1].as_uint().expect("decoded uint");
            ctx.require(!dx.is_zero(), "AMM: zero input")?;
            let rx = ctx.sload_u256(RESERVE_X_SLOT)?;
            let ry = ctx.sload_u256(RESERVE_Y_SLOT)?;
            ctx.require(!rx.is_zero() && !ry.is_zero(), "AMM: not seeded")?;
            let out = Self::output(rx, ry, dx);
            ctx.require(
                out >= min_out && !out.is_zero(),
                "AMM: price moved past minOut",
            )?;
            ctx.sstore_u256(RESERVE_X_SLOT, rx.wrapping_add(dx))?;
            ctx.sstore_u256(RESERVE_Y_SLOT, ry.wrapping_sub(out))?;
            // Credit the *origin*, so a swap forwarded by the lending pool
            // still lands with the end user.
            let trader = ctx.tx_origin();
            let slot = ctx.mapping_slot(BALANCE_Y_MAPPING_SLOT, trader.as_bytes())?;
            let bal = ctx.sload_u256(slot)?;
            ctx.sstore_u256(slot, bal.wrapping_add(out))?;
            let swaps = ctx.sload_u256(SWAP_COUNT_SLOT)?;
            ctx.sstore_u256(SWAP_COUNT_SLOT, swaps.wrapping_add(U256::ONE))?;
            ctx.emit_event(
                "Swapped(address,uint256,uint256)",
                out.to_be_bytes().to_vec(),
            )?;
            Ok(Bytes::from(out.to_be_bytes()))
        } else if sel == abi::selector("quote(uint256)") {
            let args = ctx.decode_args(&[AbiType::Uint])?;
            let dx = args[0].as_uint().expect("decoded uint");
            let rx = ctx.sload_u256(RESERVE_X_SLOT)?;
            let ry = ctx.sload_u256(RESERVE_Y_SLOT)?;
            Ok(Bytes::from(Self::output(rx, ry, dx).to_be_bytes()))
        } else if sel == abi::selector("reserves()") {
            let rx = ctx.sload_u256(RESERVE_X_SLOT)?;
            let ry = ctx.sload_u256(RESERVE_Y_SLOT)?;
            let mut out = rx.to_be_bytes().to_vec();
            out.extend_from_slice(&ry.to_be_bytes());
            Ok(Bytes::from(out))
        } else {
            ctx.revert("AMM: unknown method")
        }
    }
}

/// Mapping slot: borrower address → outstanding debt (in Y units).
const DEBT_MAPPING_SLOT: u64 = 1;

/// A lending pool composing with [`SmacsAmm`]: leveraged swaps route the
/// borrowed amount through the AMM in the same transaction, so both
/// contracts' shields check their own token from one shared token array.
pub struct LendingPool {
    amm: Address,
}

impl LendingPool {
    /// Canonical signature of the composed method.
    pub const LEVERAGE_SIG: &'static str = "leverageSwap(uint256,uint256)";

    /// A pool routing swaps to `amm`.
    pub fn routing_to(amm: Address) -> Self {
        LendingPool { amm }
    }

    /// Payload for `leverageSwap(amount_in, min_out)`.
    pub fn leverage_payload(amount_in: u64, min_out: u64) -> Vec<u8> {
        abi::encode_call(
            Self::LEVERAGE_SIG,
            &[
                smacs_chain::AbiValue::Uint(U256::from_u64(amount_in)),
                smacs_chain::AbiValue::Uint(U256::from_u64(min_out)),
            ],
        )
    }

    /// Read a borrower's outstanding debt from chain state.
    pub fn debt(chain: &smacs_chain::Chain, pool: Address, borrower: Address) -> U256 {
        chain.state().storage_get_u256(
            pool,
            mapping_slot_of(DEBT_MAPPING_SLOT, borrower.as_bytes()),
        )
    }
}

impl Contract for LendingPool {
    fn name(&self) -> &'static str {
        "LendingPool"
    }

    fn code_len(&self) -> usize {
        1_700
    }

    fn execute(&self, ctx: &mut CallContext<'_, '_>) -> Result<Bytes, VmError> {
        let sel = ctx.msg_sig().expect("execute implies selector");
        if sel == abi::selector(Self::LEVERAGE_SIG) {
            let args = ctx.decode_args(&[AbiType::Uint, AbiType::Uint])?;
            let amount_in = args[0].as_uint().expect("decoded uint");
            let min_out = args[1].as_uint().expect("decoded uint");
            // Record the borrow, then route the swap through the AMM with
            // the transaction's token array re-attached (§IV-D): the AMM's
            // shield extracts its own token or reverts the whole tx.
            let borrower = ctx.tx_origin();
            let slot = ctx.mapping_slot(DEBT_MAPPING_SLOT, borrower.as_bytes())?;
            let debt = ctx.sload_u256(slot)?;
            ctx.sstore_u256(slot, debt.wrapping_add(amount_in))?;
            let payload = abi::encode_call(
                SmacsAmm::SWAP_SIG,
                &[
                    smacs_chain::AbiValue::Uint(amount_in),
                    smacs_chain::AbiValue::Uint(min_out),
                ],
            );
            let out = smacs_core::verify::forward_call(ctx, self.amm, 0, &payload)?;
            ctx.emit_event(
                "Leveraged(address,uint256)",
                amount_in.to_be_bytes().to_vec(),
            )?;
            Ok(out)
        } else if sel == abi::selector("debtOf(address)") {
            let args = ctx.decode_args(&[AbiType::Address])?;
            let addr = args[0].as_address().expect("decoded address");
            let slot = ctx.mapping_slot(DEBT_MAPPING_SLOT, addr.as_bytes())?;
            Ok(Bytes::from(ctx.sload_u256(slot)?.to_be_bytes()))
        } else {
            ctx.revert("Pool: unknown method")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smacs_chain::Chain;
    use std::sync::Arc;

    fn setup() -> (Chain, smacs_crypto::Keypair, Address, Address) {
        let mut chain = Chain::default_chain();
        let owner = chain.funded_keypair(1, 10u128.pow(20));
        let trader = chain.funded_keypair(2, 10u128.pow(20));
        let (amm, _) = chain.deploy(&owner, Arc::new(SmacsAmm)).unwrap();
        chain
            .call_contract(&owner, amm.address, 0, SmacsAmm::seed_payload(1_000, 1_000))
            .unwrap();
        (chain, trader, amm.address, owner.address())
    }

    #[test]
    fn constant_product_swap_respects_min_out() {
        let (mut chain, trader, amm, _) = setup();
        // 1000×1000 pool, 100 in → 1000·100/1100 = 90 out.
        let r = chain
            .call_contract(&trader, amm, 0, SmacsAmm::swap_payload(100, 90))
            .unwrap();
        assert!(r.status.is_success(), "{:?}", r.status);
        assert_eq!(
            U256::from_be_slice(&r.return_data).unwrap(),
            U256::from_u64(90)
        );
        assert_eq!(
            SmacsAmm::balance_y(&chain, amm, trader.address()),
            U256::from_u64(90)
        );
        assert_eq!(SmacsAmm::swap_count(&chain, amm), U256::ONE);

        // Asking for more than the curve gives reverts.
        let r = chain
            .call_contract(&trader, amm, 0, SmacsAmm::swap_payload(100, 95))
            .unwrap();
        assert_eq!(r.revert_reason(), Some("AMM: price moved past minOut"));
    }

    #[test]
    fn unseeded_amm_rejects_swaps() {
        let mut chain = Chain::default_chain();
        let owner = chain.funded_keypair(1, 10u128.pow(20));
        let (amm, _) = chain.deploy(&owner, Arc::new(SmacsAmm)).unwrap();
        let r = chain
            .call_contract(&owner, amm.address, 0, SmacsAmm::swap_payload(10, 1))
            .unwrap();
        assert_eq!(r.revert_reason(), Some("AMM: not seeded"));
    }

    #[test]
    fn leverage_swap_records_debt_and_swaps() {
        let (mut chain, trader, amm, _) = setup();
        let owner = chain.funded_keypair(1, 10u128.pow(20));
        let (pool, _) = chain
            .deploy(&owner, Arc::new(LendingPool::routing_to(amm)))
            .unwrap();
        // Unshielded here, so the empty token array forwards cleanly; the
        // shielded composition is exercised in tests/attack_suite.rs.
        let data = smacs_token::append_tokens(
            &LendingPool::leverage_payload(100, 90),
            &Default::default(),
        );
        let r = chain.call_contract(&trader, pool.address, 0, data).unwrap();
        assert!(r.status.is_success(), "{:?}", r.status);
        assert_eq!(
            LendingPool::debt(&chain, pool.address, trader.address()),
            U256::from_u64(100)
        );
        // The swap output landed with the originating trader.
        assert_eq!(
            SmacsAmm::balance_y(&chain, amm, trader.address()),
            U256::from_u64(90)
        );
    }
}
