//! Differential suite: `Chain::execute_block_parallel` must be
//! bit-identical to sequential execution — same receipts (status, gas,
//! logs, return data, full call traces), same per-tx errors, same final
//! state digest — across randomized workloads in three conflict regimes:
//!
//! - **low**: disjoint EOA transfers — every speculation validates, the
//!   whole block commits from deltas;
//! - **high**: every transaction swaps on one AMM — every speculation
//!   after the first conflicts on the reserves and re-executes;
//! - **medium**: a randomized mix of transfers, swaps, cross-contract
//!   `forward_call` chains (`LendingPool::leverageSwap` → `SmacsAmm`),
//!   same-sender nonce chains, deliberate nonce errors, and reverting
//!   swaps (`minOut` set above the quote).
//!
//! Same deterministic-PRNG approach as `state_differential.rs` in the
//! chain crate, lifted to whole blocks.

use smacs_chain::{BlockMode, Chain, ChainError, Receipt, Transaction};
use smacs_contracts::{LendingPool, SmacsAmm};
use smacs_crypto::Keypair;
use smacs_primitives::pool::WorkerPool;
use smacs_primitives::{Address, Bytes};
use std::collections::HashMap;
use std::sync::Arc;

/// Deterministic xorshift* PRNG so failures reproduce.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

struct Fixture {
    chain: Chain,
    senders: Vec<Keypair>,
    amm: Address,
    pool: Address,
}

/// Deterministic world: funded senders, a seeded AMM, and a lending pool
/// routing to it. Built identically for the sequential and parallel runs.
fn fixture(n_senders: usize) -> Fixture {
    let mut chain = Chain::default_chain();
    let owner = chain.funded_keypair(1, 10u128.pow(24));
    let senders: Vec<Keypair> = (0..n_senders)
        .map(|i| chain.funded_keypair(100 + i as u64, 10u128.pow(24)))
        .collect();
    let (amm, _) = chain
        .deploy(&owner, Arc::new(SmacsAmm))
        .expect("deploy amm");
    let (pool, _) = chain
        .deploy(&owner, Arc::new(LendingPool::routing_to(amm.address)))
        .expect("deploy pool");
    chain
        .call_contract(
            &owner,
            amm.address,
            0,
            SmacsAmm::seed_payload(1_000_000_000, 1_000_000_000),
        )
        .expect("seed amm");
    chain.seal_block();
    Fixture {
        chain,
        senders,
        amm: amm.address,
        pool: pool.address,
    }
}

enum Regime {
    Low,
    Medium,
    High,
}

/// Generate one block of signed transactions for the regime. Nonces are
/// tracked per sender so same-sender chains stay valid — except for the
/// deliberate bad-nonce transactions the medium regime injects.
fn generate_block(
    fixture: &Fixture,
    regime: &Regime,
    rng: &mut Rng,
    txs_per_block: usize,
) -> Vec<smacs_chain::SignedTransaction> {
    let senders = &fixture.senders;
    let mut nonces: HashMap<Address, u64> = senders
        .iter()
        .map(|kp| (kp.address(), fixture.chain.state().nonce(kp.address())))
        .collect();
    let take_nonce = |addr: Address, nonces: &mut HashMap<Address, u64>| {
        let n = nonces.get_mut(&addr).expect("known sender");
        let v = *n;
        *n += 1;
        v
    };
    (0..txs_per_block)
        .map(|i| {
            let kp = match regime {
                // Low: one tx per sender, strictly disjoint accounts.
                Regime::Low => &senders[i % senders.len()],
                _ => &senders[rng.below(senders.len() as u64) as usize],
            };
            let sender = kp.address();
            let kind = match regime {
                Regime::Low => 0,
                Regime::High => 1,
                Regime::Medium => rng.below(10),
            };
            let tx = match kind {
                // Disjoint transfer to a fresh address derived from the tx
                // index (low regime) or the sender (medium).
                0 | 2 | 3 | 4 => {
                    let to = match regime {
                        Regime::Low => Address::from_low_u64(0x9000 + i as u64),
                        _ => Address::from_low_u64(0xA000 + rng.below(64)),
                    };
                    Transaction::call(
                        take_nonce(sender, &mut nonces),
                        to,
                        1 + rng.below(1000) as u128,
                        Bytes::new(),
                    )
                }
                // AMM swap; occasionally with minOut above any possible
                // quote so it reverts — receipts must match exactly.
                1 | 5 | 6 => {
                    let min_out = if matches!(regime, Regime::Medium) && rng.below(4) == 0 {
                        u64::MAX
                    } else {
                        0
                    };
                    Transaction::call(
                        take_nonce(sender, &mut nonces),
                        fixture.amm,
                        0,
                        SmacsAmm::swap_payload(1 + rng.below(10_000), min_out),
                    )
                }
                // Cross-contract forward_call chain: pool → AMM.
                7 | 8 => Transaction::call(
                    take_nonce(sender, &mut nonces),
                    fixture.pool,
                    0,
                    LendingPool::leverage_payload(1 + rng.below(10_000), 0),
                ),
                // Deliberate bad nonce: rejected with ChainError::BadNonce,
                // whose `expected` field depends on earlier txs in the
                // block — a validation-read conflict the pipeline must
                // re-execute to get right.
                _ => Transaction::call(
                    nonces[&sender] + 1 + rng.below(3),
                    Address::from_low_u64(0xB000),
                    1,
                    Bytes::new(),
                ),
            };
            tx.sign(kp)
        })
        .collect()
}

fn run_regime(regime: Regime, seeds: &[u64], n_senders: usize, txs_per_block: usize) {
    let pool = WorkerPool::new(4, 1024);
    for &seed in seeds {
        let mut rng = Rng(seed);
        let mut seq = fixture(n_senders);
        let mut par = fixture(n_senders);
        assert_eq!(
            seq.chain.state().state_digest(),
            par.chain.state().state_digest(),
            "fixtures must start identical (seed {seed})"
        );
        let txs = generate_block(&seq, &regime, &mut rng, txs_per_block);

        let seq_results: Vec<Result<Receipt, ChainError>> =
            seq.chain.execute_block_with(&txs, BlockMode::Sequential);
        let par_results: Vec<Result<Receipt, ChainError>> = par
            .chain
            .execute_block_with(&txs, BlockMode::Parallel(&pool));

        assert_eq!(
            seq_results.len(),
            par_results.len(),
            "result count (seed {seed})"
        );
        for (i, (s, p)) in seq_results.iter().zip(&par_results).enumerate() {
            assert_eq!(s, p, "tx {i} of seed {seed} diverged");
        }
        assert_eq!(
            seq.chain.state().state_digest(),
            par.chain.state().state_digest(),
            "final state diverged (seed {seed})"
        );
        let seq_block = seq.chain.seal_block().clone();
        let par_block = par.chain.seal_block().clone();
        assert_eq!(
            seq_block.transactions.len(),
            par_block.transactions.len(),
            "sealed block shape (seed {seed})"
        );
    }
    pool.shutdown();
}

#[test]
fn low_conflict_blocks_match_sequential() {
    run_regime(Regime::Low, &[11, 12, 13, 14], 16, 16);
}

#[test]
fn high_conflict_blocks_match_sequential() {
    run_regime(Regime::High, &[21, 22, 23, 24], 16, 16);
}

#[test]
fn medium_conflict_blocks_match_sequential() {
    run_regime(Regime::Medium, &[31, 32, 33, 34], 12, 32);
}

/// Short cross-regime pass for CI's parallel-exec differential smoke.
#[test]
fn parallel_differential_smoke() {
    run_regime(Regime::Low, &[41], 8, 8);
    run_regime(Regime::High, &[42], 8, 8);
    run_regime(Regime::Medium, &[43], 8, 12);
}
