//! The token itself: types, the 86-byte wire image, and expiry/one-time
//! semantics.

use smacs_crypto::{Signature, SignatureError};
use std::fmt;

/// Sentinel `index` value for tokens *without* the one-time property. The
/// paper sets the one-time property iff `index` is non-negative (§IV-A),
/// and Alg. 1 checks `tk.index > −1`.
pub const NO_INDEX: i128 = -1;

/// The three token types of §IV-A, ordered by decreasing permission scope.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum TokenType {
    /// Highest permission level: call all public methods with arbitrary
    /// arguments until expiry.
    Super,
    /// Call one specific method (identified by `msg.sig`) with arbitrary
    /// arguments until expiry.
    Method,
    /// Call one specific method with specific argument values only.
    Argument,
}

impl TokenType {
    /// Wire code (the 1-byte `type` field).
    pub fn code(self) -> u8 {
        match self {
            TokenType::Super => 1,
            TokenType::Method => 2,
            TokenType::Argument => 3,
        }
    }

    /// Parse a wire code.
    pub fn from_code(code: u8) -> Option<TokenType> {
        match code {
            1 => Some(TokenType::Super),
            2 => Some(TokenType::Method),
            3 => Some(TokenType::Argument),
            _ => None,
        }
    }

    /// All types, for sweeps in tests and benchmarks.
    pub const ALL: [TokenType; 3] = [TokenType::Super, TokenType::Method, TokenType::Argument];
}

impl fmt::Display for TokenType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenType::Super => write!(f, "super"),
            TokenType::Method => write!(f, "method"),
            TokenType::Argument => write!(f, "argument"),
        }
    }
}

impl smacs_primitives::json::ToJson for TokenType {
    fn to_json(&self) -> smacs_primitives::json::Json {
        smacs_primitives::json::Json::Str(self.to_string())
    }
}

impl smacs_primitives::json::FromJson for TokenType {
    fn from_json(
        json: &smacs_primitives::json::Json,
    ) -> Result<Self, smacs_primitives::json::JsonError> {
        match json.as_str() {
            Some("super") => Ok(TokenType::Super),
            Some("method") => Ok(TokenType::Method),
            Some("argument") => Ok(TokenType::Argument),
            other => Err(smacs_primitives::json::JsonError(format!(
                "unknown token type {other:?}"
            ))),
        }
    }
}

/// Token decode failure.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TokenCodecError {
    /// Wire image was not exactly 86 bytes.
    BadLength {
        /// The length encountered.
        got: usize,
    },
    /// Unknown `type` byte.
    BadType(u8),
    /// Signature bytes malformed.
    BadSignature(SignatureError),
}

impl fmt::Display for TokenCodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenCodecError::BadLength { got } => {
                write!(f, "token must be {} bytes, got {got}", Token::SIZE)
            }
            TokenCodecError::BadType(code) => write!(f, "unknown token type code {code}"),
            TokenCodecError::BadSignature(e) => write!(f, "bad token signature field: {e}"),
        }
    }
}

impl std::error::Error for TokenCodecError {}

/// The 86-byte access token of Fig. 3.
///
/// ```text
/// type  expire  index  signature
///  1B     4B     16B      65B      = 86 bytes
/// ```
///
/// `signature = Sign_skTS(type ‖ expire ‖ index ‖ reqPayload)` — computed by
/// the Token Service at issuance over the request payload, reconstructed by
/// the contract from its own transaction context at verification (Alg. 1).
///
/// ```
/// use smacs_token::{Token, TokenType, NO_INDEX};
/// use smacs_crypto::Keypair;
///
/// let token = Token {
///     ttype: TokenType::Method,
///     expire: 1_600_000_000,
///     index: NO_INDEX,
///     signature: Keypair::from_seed(1).sign_message(b"demo"),
/// };
/// let wire = token.to_bytes();
/// assert_eq!(wire.len(), 86); // Fig. 3
/// assert_eq!(Token::from_bytes(&wire).unwrap(), token);
/// assert!(!token.is_one_time());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Token {
    /// Token type.
    pub ttype: TokenType,
    /// Expiration time (Unix seconds, compared against `block.timestamp`).
    pub expire: u32,
    /// One-time index; [`NO_INDEX`] (−1) when the one-time property is not
    /// set. 16 bytes on the wire (two's-complement big-endian).
    pub index: i128,
    /// The TS signature binding the token to its usage context.
    pub signature: Signature,
}

impl Token {
    /// Wire size: 86 bytes (Fig. 3).
    pub const SIZE: usize = 1 + 4 + 16 + Signature::SIZE;

    /// Whether the one-time property is set (`index > −1`, as Alg. 1 puts
    /// it).
    pub fn is_one_time(&self) -> bool {
        self.index > -1
    }

    /// Whether the token has expired at time `now` (Alg. 1's first check:
    /// reject if `now() > tk.expire`).
    pub fn is_expired(&self, now: u64) -> bool {
        now > self.expire as u64
    }

    /// Serialize to the 86-byte wire image.
    pub fn to_bytes(&self) -> [u8; Token::SIZE] {
        let mut out = [0u8; Token::SIZE];
        out[0] = self.ttype.code();
        out[1..5].copy_from_slice(&self.expire.to_be_bytes());
        out[5..21].copy_from_slice(&self.index.to_be_bytes());
        out[21..].copy_from_slice(&self.signature.to_bytes());
        out
    }

    /// Parse from the 86-byte wire image.
    pub fn from_bytes(bytes: &[u8]) -> Result<Token, TokenCodecError> {
        if bytes.len() != Token::SIZE {
            return Err(TokenCodecError::BadLength { got: bytes.len() });
        }
        let ttype = TokenType::from_code(bytes[0]).ok_or(TokenCodecError::BadType(bytes[0]))?;
        let expire = u32::from_be_bytes(bytes[1..5].try_into().expect("4 bytes"));
        let index = i128::from_be_bytes(bytes[5..21].try_into().expect("16 bytes"));
        let signature =
            Signature::from_bytes(&bytes[21..]).map_err(TokenCodecError::BadSignature)?;
        Ok(Token {
            ttype,
            expire,
            index,
            signature,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smacs_crypto::Keypair;

    fn sample_token(ttype: TokenType, index: i128) -> Token {
        let kp = Keypair::from_seed(42);
        Token {
            ttype,
            expire: 1_600_000_000,
            index,
            signature: kp.sign_message(b"sample"),
        }
    }

    #[test]
    fn wire_size_is_86_bytes() {
        assert_eq!(Token::SIZE, 86);
        let tk = sample_token(TokenType::Super, NO_INDEX);
        assert_eq!(tk.to_bytes().len(), 86);
    }

    #[test]
    fn round_trip_all_types() {
        for ttype in TokenType::ALL {
            for index in [NO_INDEX, 0, 1, i128::MAX] {
                let tk = sample_token(ttype, index);
                let back = Token::from_bytes(&tk.to_bytes()).unwrap();
                assert_eq!(back, tk);
            }
        }
    }

    #[test]
    fn one_time_property_follows_index_sign() {
        assert!(!sample_token(TokenType::Super, NO_INDEX).is_one_time());
        assert!(sample_token(TokenType::Super, 0).is_one_time());
        assert!(sample_token(TokenType::Super, 7).is_one_time());
        assert!(!sample_token(TokenType::Super, -5).is_one_time());
    }

    #[test]
    fn expiry_boundary() {
        let tk = sample_token(TokenType::Method, NO_INDEX);
        assert!(!tk.is_expired(tk.expire as u64)); // now == expire: still valid
        assert!(!tk.is_expired(tk.expire as u64 - 1));
        assert!(tk.is_expired(tk.expire as u64 + 1));
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(matches!(
            Token::from_bytes(&[0u8; 85]),
            Err(TokenCodecError::BadLength { got: 85 })
        ));
        let mut bytes = sample_token(TokenType::Super, NO_INDEX).to_bytes();
        bytes[0] = 99;
        assert!(matches!(
            Token::from_bytes(&bytes),
            Err(TokenCodecError::BadType(99))
        ));
        let mut bytes = sample_token(TokenType::Super, NO_INDEX).to_bytes();
        bytes[85] = 77; // recovery id byte must be 27/28
        assert!(matches!(
            Token::from_bytes(&bytes),
            Err(TokenCodecError::BadSignature(_))
        ));
    }

    #[test]
    fn type_codes_round_trip() {
        for ttype in TokenType::ALL {
            assert_eq!(TokenType::from_code(ttype.code()), Some(ttype));
        }
        assert_eq!(TokenType::from_code(0), None);
        assert_eq!(TokenType::from_code(4), None);
    }
}
