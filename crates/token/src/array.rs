//! Call-chain token arrays (§IV-D) and their calldata embedding.
//!
//! A transaction that triggers a call chain `SC_A → SC_B → SC_C` must carry
//! one token per SMACS-enabled contract on the chain:
//!
//! ```text
//! SC_A: tk_A ‖ SC_B: tk_B ‖ SC_C: tk_C
//! ```
//!
//! Each entry is `address (20) ‖ token (86)` = 106 bytes. The array is
//! appended to the *payload calldata* (selector + ABI-encoded application
//! arguments) with a 4-byte length suffix:
//!
//! ```text
//! calldata = payload ‖ entries… ‖ entry_count (4, BE)
//! ```
//!
//! The trailing count lets a receiving contract split the original payload
//! from the token array without parsing the ABI — `extractToken(T)` in
//! Alg. 1 — and, crucially, lets argument-token signatures bind the
//! *payload* bytes (a signature cannot cover itself). When a contract calls
//! the next contract on the chain, it passes the same array along, and each
//! callee parses out its own token (Fig. 5's flow).

use smacs_primitives::Address;
use std::fmt;

use crate::types::{Token, TokenCodecError};

/// Size of one array entry: 20-byte address + 86-byte token.
pub const ENTRY_SIZE: usize = 20 + Token::SIZE;

/// Token-array parse failure.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TokenArrayError {
    /// Calldata too short to hold the announced array.
    Truncated,
    /// An embedded token failed to decode.
    BadToken(TokenCodecError),
    /// Entry count suffix missing.
    MissingCount,
}

impl fmt::Display for TokenArrayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenArrayError::Truncated => write!(f, "token array truncated"),
            TokenArrayError::BadToken(e) => write!(f, "bad token in array: {e}"),
            TokenArrayError::MissingCount => write!(f, "missing token-array count suffix"),
        }
    }
}

impl std::error::Error for TokenArrayError {}

/// An ordered list of `(contract, token)` pairs — one per SMACS-enabled
/// contract on the intended call chain.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct TokenArray {
    entries: Vec<(Address, Token)>,
}

impl TokenArray {
    /// Empty array.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a token for `contract`.
    pub fn push(&mut self, contract: Address, token: Token) {
        self.entries.push((contract, token));
    }

    /// Builder-style [`TokenArray::push`].
    pub fn with(mut self, contract: Address, token: Token) -> Self {
        self.push(contract, token);
        self
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True iff no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entries in order.
    pub fn entries(&self) -> &[(Address, Token)] {
        &self.entries
    }

    /// Find the token addressed to `contract` — what each contract on the
    /// chain does on receipt ("it can extract the token associated with its
    /// address", §IV-D).
    pub fn token_for(&self, contract: Address) -> Option<&Token> {
        self.entries
            .iter()
            .find(|(addr, _)| *addr == contract)
            .map(|(_, tk)| tk)
    }

    /// Serialize entries (without the count suffix).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.entries.len() * ENTRY_SIZE);
        for (addr, token) in &self.entries {
            out.extend_from_slice(addr.as_bytes());
            out.extend_from_slice(&token.to_bytes());
        }
        out
    }

    /// Parse `count` entries from `bytes`.
    pub fn from_bytes(bytes: &[u8], count: usize) -> Result<TokenArray, TokenArrayError> {
        if bytes.len() != count * ENTRY_SIZE {
            return Err(TokenArrayError::Truncated);
        }
        let mut entries = Vec::with_capacity(count);
        for chunk in bytes.chunks_exact(ENTRY_SIZE) {
            let addr = Address::from_slice(&chunk[..20]).expect("20 bytes");
            let token = Token::from_bytes(&chunk[20..]).map_err(TokenArrayError::BadToken)?;
            entries.push((addr, token));
        }
        Ok(TokenArray { entries })
    }
}

/// Embed a token array into calldata:
/// `payload ‖ entries ‖ count (4, BE)`.
pub fn append_tokens(payload: &[u8], tokens: &TokenArray) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + tokens.len() * ENTRY_SIZE + 4);
    out.extend_from_slice(payload);
    out.extend_from_slice(&tokens.to_bytes());
    out.extend_from_slice(&(tokens.len() as u32).to_be_bytes());
    out
}

/// Split embedded calldata back into `(payload, tokens)` — the contract's
/// `extractToken(T)` plus original-calldata recovery.
pub fn split_tokens(data: &[u8]) -> Result<(&[u8], TokenArray), TokenArrayError> {
    if data.len() < 4 {
        return Err(TokenArrayError::MissingCount);
    }
    let (rest, count_bytes) = data.split_at(data.len() - 4);
    let count = u32::from_be_bytes(count_bytes.try_into().expect("4 bytes")) as usize;
    let array_len = count
        .checked_mul(ENTRY_SIZE)
        .ok_or(TokenArrayError::Truncated)?;
    if rest.len() < array_len {
        return Err(TokenArrayError::Truncated);
    }
    let (payload, array_bytes) = rest.split_at(rest.len() - array_len);
    let tokens = TokenArray::from_bytes(array_bytes, count)?;
    Ok((payload, tokens))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{TokenType, NO_INDEX};
    use proptest::prelude::*;
    use smacs_crypto::Keypair;

    fn token(seed: u64, ttype: TokenType) -> Token {
        Token {
            ttype,
            expire: 2_000_000_000,
            index: NO_INDEX,
            signature: Keypair::from_seed(seed).sign_message(b"tk"),
        }
    }

    #[test]
    fn lookup_by_contract() {
        let a = Address::from_low_u64(1);
        let b = Address::from_low_u64(2);
        let array = TokenArray::new()
            .with(a, token(1, TokenType::Super))
            .with(b, token(2, TokenType::Method));
        assert_eq!(array.token_for(a).unwrap().ttype, TokenType::Super);
        assert_eq!(array.token_for(b).unwrap().ttype, TokenType::Method);
        assert!(array.token_for(Address::from_low_u64(3)).is_none());
    }

    #[test]
    fn embed_and_split() {
        let payload = vec![0xde, 0xad, 0xbe, 0xef, 1, 2, 3];
        let array = TokenArray::new()
            .with(Address::from_low_u64(1), token(1, TokenType::Super))
            .with(Address::from_low_u64(2), token(2, TokenType::Argument));
        let embedded = append_tokens(&payload, &array);
        assert_eq!(embedded.len(), payload.len() + 2 * ENTRY_SIZE + 4);
        let (got_payload, got_array) = split_tokens(&embedded).unwrap();
        assert_eq!(got_payload, &payload[..]);
        assert_eq!(got_array, array);
    }

    #[test]
    fn empty_array_embedding() {
        let payload = vec![1, 2, 3, 4];
        let embedded = append_tokens(&payload, &TokenArray::new());
        let (got_payload, got_array) = split_tokens(&embedded).unwrap();
        assert_eq!(got_payload, &payload[..]);
        assert!(got_array.is_empty());
    }

    #[test]
    fn split_rejects_garbage() {
        assert_eq!(split_tokens(&[1, 2]), Err(TokenArrayError::MissingCount));
        // Count says 1 entry but no bytes for it.
        let mut data = vec![0u8; 4];
        data[3] = 1;
        assert_eq!(split_tokens(&data), Err(TokenArrayError::Truncated));
        // Huge count must not overflow.
        let data = vec![0xff; 8];
        assert!(split_tokens(&data).is_err());
    }

    #[test]
    fn corrupt_token_in_array_detected() {
        let array = TokenArray::new().with(Address::from_low_u64(1), token(1, TokenType::Super));
        let mut embedded = append_tokens(b"pay", &array);
        // Clobber the token's type byte (payload is 3 bytes, then 20 addr).
        embedded[3 + 20] = 0xEE;
        assert!(matches!(
            split_tokens(&embedded),
            Err(TokenArrayError::BadToken(_))
        ));
    }

    proptest! {
        #[test]
        fn prop_embed_split_round_trip(
            payload in prop::collection::vec(any::<u8>(), 0..200),
            seeds in prop::collection::vec(1u64..1000, 0..5),
        ) {
            let mut array = TokenArray::new();
            for (i, seed) in seeds.iter().enumerate() {
                array.push(
                    Address::from_low_u64(i as u64 + 1),
                    token(*seed, TokenType::ALL[i % 3]),
                );
            }
            let embedded = append_tokens(&payload, &array);
            let (got_payload, got_array) = split_tokens(&embedded).unwrap();
            prop_assert_eq!(got_payload, &payload[..]);
            prop_assert_eq!(got_array, array);
        }

        #[test]
        fn prop_split_never_panics(data in prop::collection::vec(any::<u8>(), 0..512)) {
            let _ = split_tokens(&data);
        }
    }
}
