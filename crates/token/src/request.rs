//! Token requests: what a client submits to the Token Service.
//!
//! Fig. 2 gives the wire layout and Tab. I the per-type field matrix:
//!
//! | type     | cAddr | sAddr | methodId | argName/argValue |
//! |----------|-------|-------|----------|------------------|
//! | Super    |  ✓    |  ✓    |          |                  |
//! | Method   |  ✓    |  ✓    |  ✓       |                  |
//! | Argument |  ✓    |  ✓    |  ✓       |  ✓ (repeated)    |
//!
//! `methodId` is carried as the canonical Solidity signature string (e.g.
//! `"withdraw(uint256)"`); the 4-byte selector is derived from it. Requests
//! also serialize to JSON for the TS's web front end.

use smacs_chain::abi::{selector, Selector};
use smacs_primitives::hexutil;
use smacs_primitives::json::{FromJson, Json, JsonError, ToJson};
use smacs_primitives::Address;
use std::fmt;

use crate::types::TokenType;

smacs_primitives::json_codec! {
    /// A named argument binding in an argument-token request.
    #[derive(Clone, PartialEq, Eq, Debug)]
    pub struct ArgBinding {
        /// Argument name (`argName`).
        pub name: String,
        /// Argument value, rendered canonically (`argValue`).
        pub value: String,
    }
}

/// A client's token request (Fig. 2).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TokenRequest {
    /// Requested token type.
    pub ttype: TokenType,
    /// Target contract address (`cAddr`).
    pub contract: Address,
    /// Requesting client address (`sAddr`).
    pub sender: Address,
    /// Canonical method signature (`methodId`); required for method and
    /// argument tokens.
    pub method: Option<String>,
    /// Argument bindings; meaningful for argument tokens only.
    pub args: Vec<ArgBinding>,
    /// The exact payload calldata (selector + ABI-encoded arguments) the
    /// client will send; required for argument tokens so the TS can bind
    /// the signature to `msg.data` (and feed runtime-verification tools).
    pub calldata: Option<Vec<u8>>,
    /// Whether the client asks for the one-time property.
    pub one_time: bool,
}

/// Request validation failure.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RequestError {
    /// Method/argument request without a `methodId`.
    MissingMethod,
    /// Argument request without calldata to bind.
    MissingCalldata,
    /// Super/method request carrying argument bindings.
    UnexpectedArgs,
    /// Wire image truncated or malformed.
    Malformed(&'static str),
}

impl fmt::Display for RequestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RequestError::MissingMethod => write!(f, "request requires a methodId"),
            RequestError::MissingCalldata => {
                write!(f, "argument request requires bound calldata")
            }
            RequestError::UnexpectedArgs => {
                write!(f, "argument bindings only valid for argument tokens")
            }
            RequestError::Malformed(what) => write!(f, "malformed request: {what}"),
        }
    }
}

impl std::error::Error for RequestError {}

impl TokenRequest {
    /// A well-formed super-token request.
    pub fn super_token(contract: Address, sender: Address) -> Self {
        TokenRequest {
            ttype: TokenType::Super,
            contract,
            sender,
            method: None,
            args: Vec::new(),
            calldata: None,
            one_time: false,
        }
    }

    /// A well-formed method-token request.
    pub fn method_token(contract: Address, sender: Address, method: impl Into<String>) -> Self {
        TokenRequest {
            ttype: TokenType::Method,
            contract,
            sender,
            method: Some(method.into()),
            args: Vec::new(),
            calldata: None,
            one_time: false,
        }
    }

    /// A well-formed argument-token request binding `calldata`.
    pub fn argument_token(
        contract: Address,
        sender: Address,
        method: impl Into<String>,
        args: Vec<ArgBinding>,
        calldata: Vec<u8>,
    ) -> Self {
        TokenRequest {
            ttype: TokenType::Argument,
            contract,
            sender,
            method: Some(method.into()),
            args,
            calldata: Some(calldata),
            one_time: false,
        }
    }

    /// Request the one-time property.
    pub fn one_time(mut self) -> Self {
        self.one_time = true;
        self
    }

    /// Validate the Tab. I field matrix.
    pub fn validate(&self) -> Result<(), RequestError> {
        match self.ttype {
            TokenType::Super => {
                if !self.args.is_empty() {
                    return Err(RequestError::UnexpectedArgs);
                }
            }
            TokenType::Method => {
                if self.method.is_none() {
                    return Err(RequestError::MissingMethod);
                }
                if !self.args.is_empty() {
                    return Err(RequestError::UnexpectedArgs);
                }
            }
            TokenType::Argument => {
                if self.method.is_none() {
                    return Err(RequestError::MissingMethod);
                }
                if self.calldata.is_none() {
                    return Err(RequestError::MissingCalldata);
                }
            }
        }
        Ok(())
    }

    /// The 4-byte selector derived from `methodId`, if present.
    pub fn selector(&self) -> Option<Selector> {
        self.method.as_deref().map(selector)
    }

    /// Serialize to the Fig. 2 wire layout: fixed header (`type ‖ cAddr ‖
    /// sAddr`) followed by length-prefixed strings (`methodId`, then
    /// alternating `argName`/`argValue`), followed by optional calldata.
    pub fn to_wire(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.push(self.ttype.code());
        out.extend_from_slice(self.contract.as_bytes());
        out.extend_from_slice(self.sender.as_bytes());
        out.push(self.one_time as u8);
        write_string(&mut out, self.method.as_deref().unwrap_or(""));
        out.extend_from_slice(&(self.args.len() as u16).to_be_bytes());
        for arg in &self.args {
            write_string(&mut out, &arg.name);
            write_string(&mut out, &arg.value);
        }
        match &self.calldata {
            Some(data) => {
                out.extend_from_slice(&(data.len() as u32).to_be_bytes());
                out.extend_from_slice(data);
            }
            None => out.extend_from_slice(&u32::MAX.to_be_bytes()),
        }
        out
    }

    /// Parse the Fig. 2 wire layout.
    pub fn from_wire(bytes: &[u8]) -> Result<TokenRequest, RequestError> {
        let mut cursor = Cursor { bytes, pos: 0 };
        let ttype = TokenType::from_code(cursor.take_u8()?)
            .ok_or(RequestError::Malformed("unknown type code"))?;
        let contract = Address::from_slice(cursor.take(20)?)
            .ok_or(RequestError::Malformed("bad contract address"))?;
        let sender = Address::from_slice(cursor.take(20)?)
            .ok_or(RequestError::Malformed("bad sender address"))?;
        let one_time = cursor.take_u8()? == 1;
        let method = {
            let s = cursor.take_string()?;
            if s.is_empty() {
                None
            } else {
                Some(s)
            }
        };
        let arg_count = cursor.take_u16()?;
        let mut args = Vec::with_capacity(arg_count as usize);
        for _ in 0..arg_count {
            let name = cursor.take_string()?;
            let value = cursor.take_string()?;
            args.push(ArgBinding { name, value });
        }
        let calldata_len = cursor.take_u32()?;
        let calldata = if calldata_len == u32::MAX {
            None
        } else {
            Some(cursor.take(calldata_len as usize)?.to_vec())
        };
        if cursor.pos != bytes.len() {
            return Err(RequestError::Malformed("trailing bytes"));
        }
        Ok(TokenRequest {
            ttype,
            contract,
            sender,
            method,
            args,
            calldata,
            one_time,
        })
    }
}

// Hand-written rather than `json_codec!`: calldata crosses the wire as a
// hex string (`"0x…"`), not a JSON byte array, so the field needs a custom
// encoding the macro doesn't model.
impl ToJson for TokenRequest {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("ttype".into(), self.ttype.to_json()),
            ("contract".into(), self.contract.to_json()),
            ("sender".into(), self.sender.to_json()),
            ("method".into(), self.method.to_json()),
            ("args".into(), self.args.to_json()),
            (
                "calldata".into(),
                match &self.calldata {
                    Some(data) => Json::Str(hexutil::encode_prefixed(data)),
                    None => Json::Null,
                },
            ),
            ("one_time".into(), Json::Bool(self.one_time)),
        ])
    }
}

impl FromJson for TokenRequest {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        let calldata = match json.get("calldata") {
            None | Some(Json::Null) => None,
            Some(Json::Str(s)) => Some(
                hexutil::decode_flexible(s)
                    .ok_or_else(|| JsonError(format!("bad calldata hex {s:?}")))?,
            ),
            Some(other) => {
                return Err(JsonError(format!("bad calldata value {other}")));
            }
        };
        // Optional fields tolerate absence (not just explicit null), matching
        // the serde-derived codec this replaces: a super-token request may
        // simply omit "method", "args", "calldata", and "one_time".
        Ok(TokenRequest {
            ttype: TokenType::from_json(json.want("ttype")?)?,
            contract: Address::from_json(json.want("contract")?)?,
            sender: Address::from_json(json.want("sender")?)?,
            method: match json.get("method") {
                None | Some(Json::Null) => None,
                Some(v) => Some(String::from_json(v)?),
            },
            args: match json.get("args") {
                None | Some(Json::Null) => Vec::new(),
                Some(v) => Vec::<ArgBinding>::from_json(v)?,
            },
            calldata,
            one_time: match json.get("one_time") {
                None | Some(Json::Null) => false,
                Some(v) => bool::from_json(v)?,
            },
        })
    }
}

fn write_string(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u16).to_be_bytes());
    out.extend_from_slice(s.as_bytes());
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], RequestError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or(RequestError::Malformed("length overflow"))?;
        if end > self.bytes.len() {
            return Err(RequestError::Malformed("truncated"));
        }
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn take_u8(&mut self) -> Result<u8, RequestError> {
        Ok(self.take(1)?[0])
    }

    fn take_u16(&mut self) -> Result<u16, RequestError> {
        Ok(u16::from_be_bytes(
            self.take(2)?.try_into().expect("2 bytes"),
        ))
    }

    fn take_u32(&mut self) -> Result<u32, RequestError> {
        Ok(u32::from_be_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn take_string(&mut self) -> Result<String, RequestError> {
        let len = self.take_u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| RequestError::Malformed("bad utf8"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn contract() -> Address {
        Address::from_low_u64(0xC0)
    }

    fn sender() -> Address {
        Address::from_low_u64(0x5E)
    }

    #[test]
    fn constructors_validate() {
        assert!(TokenRequest::super_token(contract(), sender())
            .validate()
            .is_ok());
        assert!(TokenRequest::method_token(contract(), sender(), "f()")
            .validate()
            .is_ok());
        assert!(TokenRequest::argument_token(
            contract(),
            sender(),
            "f(uint256)",
            vec![ArgBinding {
                name: "x".into(),
                value: "1".into()
            }],
            vec![0xde, 0xad],
        )
        .validate()
        .is_ok());
    }

    #[test]
    fn tab1_field_matrix_enforced() {
        // Super with args: rejected.
        let mut req = TokenRequest::super_token(contract(), sender());
        req.args.push(ArgBinding {
            name: "x".into(),
            value: "1".into(),
        });
        assert_eq!(req.validate(), Err(RequestError::UnexpectedArgs));

        // Method without methodId: rejected.
        let mut req = TokenRequest::method_token(contract(), sender(), "f()");
        req.method = None;
        assert_eq!(req.validate(), Err(RequestError::MissingMethod));

        // Argument without calldata: rejected.
        let mut req = TokenRequest::argument_token(contract(), sender(), "f()", vec![], vec![1]);
        req.calldata = None;
        assert_eq!(req.validate(), Err(RequestError::MissingCalldata));
    }

    #[test]
    fn selector_derivation() {
        let req = TokenRequest::method_token(contract(), sender(), "transfer(address,uint256)");
        assert_eq!(req.selector().unwrap().to_hex(), "0xa9059cbb");
        assert_eq!(
            TokenRequest::super_token(contract(), sender()).selector(),
            None
        );
    }

    #[test]
    fn wire_round_trip() {
        let reqs = vec![
            TokenRequest::super_token(contract(), sender()),
            TokenRequest::method_token(contract(), sender(), "f(uint256)").one_time(),
            TokenRequest::argument_token(
                contract(),
                sender(),
                "g(address,uint256)",
                vec![
                    ArgBinding {
                        name: "to".into(),
                        value: "0x1234".into(),
                    },
                    ArgBinding {
                        name: "amount".into(),
                        value: "100".into(),
                    },
                ],
                vec![1, 2, 3],
            ),
        ];
        for req in reqs {
            let wire = req.to_wire();
            assert_eq!(TokenRequest::from_wire(&wire).unwrap(), req);
        }
    }

    #[test]
    fn wire_rejects_garbage() {
        assert!(TokenRequest::from_wire(&[]).is_err());
        assert!(TokenRequest::from_wire(&[9]).is_err());
        let mut wire = TokenRequest::super_token(contract(), sender()).to_wire();
        wire.push(0); // trailing byte
        assert!(matches!(
            TokenRequest::from_wire(&wire),
            Err(RequestError::Malformed("trailing bytes"))
        ));
    }

    #[test]
    fn json_accepts_omitted_optional_fields() {
        // External clients may omit every non-required field, as the old
        // serde-derived codec allowed.
        let json = format!(
            r#"{{"ttype":"super","contract":"{}","sender":"{}"}}"#,
            contract().to_hex(),
            sender().to_hex()
        );
        let req: TokenRequest = smacs_primitives::json::from_str(&json).unwrap();
        assert_eq!(req, TokenRequest::super_token(contract(), sender()));
        assert!(req.validate().is_ok());
    }

    #[test]
    fn json_round_trip() {
        let req = TokenRequest::argument_token(
            contract(),
            sender(),
            "f(uint256)",
            vec![ArgBinding {
                name: "x".into(),
                value: "7".into(),
            }],
            vec![0xab],
        );
        let json = smacs_primitives::json::to_string(&req);
        let back: TokenRequest = smacs_primitives::json::from_str(&json).unwrap();
        assert_eq!(back, req);
    }

    proptest! {
        #[test]
        fn prop_wire_round_trip(
            type_idx in 0usize..3,
            one_time in any::<bool>(),
            method in "[a-z]{1,12}\\(\\)",
            args in prop::collection::vec(("[a-z]{1,8}", "[a-z0-9]{0,16}"), 0..4),
            calldata in prop::collection::vec(any::<u8>(), 0..64),
        ) {
            let ttype = TokenType::ALL[type_idx];
            let req = TokenRequest {
                ttype,
                contract: contract(),
                sender: sender(),
                method: Some(method),
                args: args.into_iter().map(|(name, value)| ArgBinding { name, value }).collect(),
                calldata: Some(calldata),
                one_time,
            };
            let wire = req.to_wire();
            prop_assert_eq!(TokenRequest::from_wire(&wire).unwrap(), req);
        }

        #[test]
        fn prop_from_wire_never_panics(data in prop::collection::vec(any::<u8>(), 0..128)) {
            let _ = TokenRequest::from_wire(&data);
        }
    }
}
