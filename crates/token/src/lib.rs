//! SMACS token and token-request wire formats.
//!
//! The paper defines three artifacts this crate implements byte-for-byte:
//!
//! - the **86-byte token** (Fig. 3): `type (1) ‖ expire (4) ‖ index (16) ‖
//!   signature (65)` — see [`Token`];
//! - the **token request** (Fig. 2 / Tab. I): `type ‖ cAddr ‖ sAddr ‖
//!   methodId ‖ (argName, argValue)…`, with the tail fields present
//!   according to the requested type — see [`TokenRequest`];
//! - the **signing payload**: the byte string
//!   `type ‖ expire ‖ index ‖ reqPayload` the TS signs at issuance, which
//!   the contract later *reconstructs from its own transaction context*
//!   (Alg. 1) so the signature cryptographically binds the token to exactly
//!   one usage context — see [`payload`];
//! - the **call-chain token array** (§IV-D): `SC_A: tk_A ‖ SC_B: tk_B ‖ …`
//!   embedded in calldata so every contract on the chain can extract its
//!   own token — see [`array`].

pub mod array;
pub mod payload;
pub mod request;
pub mod types;

pub use array::{append_tokens, split_tokens, TokenArray, TokenArrayError};
pub use payload::{signing_digest, signing_payload, PayloadContext};
pub use request::{ArgBinding, RequestError, TokenRequest};
pub use types::{Token, TokenCodecError, TokenType, NO_INDEX};
