//! The signing payload: the byte string whose signature binds a token to
//! its usage context.
//!
//! At issuance the TS computes (paper §IV-A):
//!
//! ```text
//! signature = Sign_skTS( type ‖ expire ‖ index ‖ reqPayload )
//! ```
//!
//! and at verification the contract reconstructs the same bytes from its own
//! transaction context (Alg. 1):
//!
//! ```text
//! tkData   = tk.expire ‖ tk.index
//! addrData = T.origin ‖ address(this)
//! data     = tk.type ‖ tkData ‖ addrData
//! Method:   data ‖= msg.sig
//! Argument: data ‖= msg.sig ‖ msg.data
//! ```
//!
//! `sAddr` maps to `T.origin`, `cAddr` to `address(this)`, `methodId` to
//! `msg.sig`, and the argument list to `msg.data`. The "msg.data" bound by
//! an argument token is the *payload calldata* — the method selector plus
//! the ABI-encoded application arguments, **excluding** the appended token
//! array (the token cannot sign itself; see [`crate::array`] for the
//! embedding that makes the original calldata recoverable).
//!
//! Because both sides derive the identical byte string independently, "any
//! tiny change of the context (e.g., address, argument, etc.) will be caught
//! by the signature verification process" (§VII-A, substitution attack).

use smacs_chain::abi::Selector;
use smacs_crypto::keccak256;
use smacs_primitives::{Address, H256};

use crate::types::TokenType;

/// The context a signing payload binds: who may use the token, against
/// which contract, and (for method/argument tokens) how.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PayloadContext {
    /// The client account (`sAddr` at issuance; `tx.origin` at
    /// verification).
    pub sender: Address,
    /// The protected contract (`cAddr` at issuance; `address(this)` at
    /// verification).
    pub contract: Address,
    /// The bound method selector (`methodId` / `msg.sig`) — present for
    /// method and argument tokens.
    pub selector: Option<Selector>,
    /// The bound payload calldata (`msg.data` minus the token array) —
    /// present for argument tokens.
    pub calldata: Option<Vec<u8>>,
}

/// Build the canonical signing payload for a token.
///
/// Layout: `type (1) ‖ expire (4, BE) ‖ index (16, BE two's complement) ‖
/// sender (20) ‖ contract (20) [‖ selector (4)] [‖ calldata]`.
///
/// The selector is appended for [`TokenType::Method`] and
/// [`TokenType::Argument`]; the calldata only for [`TokenType::Argument`].
/// Fields irrelevant to the type are ignored even if present in `ctx`, so a
/// token can never be "upgraded" by replaying it against a different method.
pub fn signing_payload(
    ttype: TokenType,
    expire: u32,
    index: i128,
    ctx: &PayloadContext,
) -> Vec<u8> {
    let mut data =
        Vec::with_capacity(1 + 4 + 16 + 20 + 20 + 4 + ctx.calldata.as_ref().map_or(0, |c| c.len()));
    data.push(ttype.code());
    data.extend_from_slice(&expire.to_be_bytes());
    data.extend_from_slice(&index.to_be_bytes());
    data.extend_from_slice(ctx.sender.as_bytes());
    data.extend_from_slice(ctx.contract.as_bytes());
    match ttype {
        TokenType::Super => {}
        TokenType::Method => {
            let sel = ctx.selector.unwrap_or_default();
            data.extend_from_slice(&sel.0);
        }
        TokenType::Argument => {
            let sel = ctx.selector.unwrap_or_default();
            data.extend_from_slice(&sel.0);
            if let Some(calldata) = &ctx.calldata {
                data.extend_from_slice(calldata);
            }
        }
    }
    data
}

/// keccak256 of [`signing_payload`] — the digest the TS signs and the
/// contract verifies.
pub fn signing_digest(ttype: TokenType, expire: u32, index: i128, ctx: &PayloadContext) -> H256 {
    keccak256(&signing_payload(ttype, expire, index, ctx))
}

#[cfg(test)]
mod tests {
    use super::*;
    use smacs_chain::abi::selector;

    fn ctx() -> PayloadContext {
        PayloadContext {
            sender: Address::from_low_u64(0xAA),
            contract: Address::from_low_u64(0xBB),
            selector: Some(selector("withdraw(uint256)")),
            calldata: Some(vec![1, 2, 3, 4, 5]),
        }
    }

    #[test]
    fn super_payload_ignores_method_fields() {
        let with = signing_payload(TokenType::Super, 100, -1, &ctx());
        let without = signing_payload(
            TokenType::Super,
            100,
            -1,
            &PayloadContext {
                selector: None,
                calldata: None,
                ..ctx()
            },
        );
        assert_eq!(with, without);
        assert_eq!(with.len(), 1 + 4 + 16 + 20 + 20);
    }

    #[test]
    fn method_payload_appends_selector_only() {
        let payload = signing_payload(TokenType::Method, 100, -1, &ctx());
        assert_eq!(payload.len(), 61 + 4);
        assert_eq!(&payload[61..], &selector("withdraw(uint256)").0);
    }

    #[test]
    fn argument_payload_appends_selector_and_calldata() {
        let payload = signing_payload(TokenType::Argument, 100, -1, &ctx());
        assert_eq!(payload.len(), 61 + 4 + 5);
        assert_eq!(&payload[65..], &[1, 2, 3, 4, 5]);
    }

    #[test]
    fn every_field_changes_the_digest() {
        let base = signing_digest(TokenType::Argument, 100, -1, &ctx());
        assert_ne!(base, signing_digest(TokenType::Method, 100, -1, &ctx()));
        assert_ne!(base, signing_digest(TokenType::Argument, 101, -1, &ctx()));
        assert_ne!(base, signing_digest(TokenType::Argument, 100, 0, &ctx()));
        assert_ne!(
            base,
            signing_digest(
                TokenType::Argument,
                100,
                -1,
                &PayloadContext {
                    sender: Address::from_low_u64(0xAC),
                    ..ctx()
                }
            )
        );
        assert_ne!(
            base,
            signing_digest(
                TokenType::Argument,
                100,
                -1,
                &PayloadContext {
                    contract: Address::from_low_u64(0xBC),
                    ..ctx()
                }
            )
        );
        assert_ne!(
            base,
            signing_digest(
                TokenType::Argument,
                100,
                -1,
                &PayloadContext {
                    selector: Some(selector("other()")),
                    ..ctx()
                }
            )
        );
        assert_ne!(
            base,
            signing_digest(
                TokenType::Argument,
                100,
                -1,
                &PayloadContext {
                    calldata: Some(vec![1, 2, 3, 4, 6]),
                    ..ctx()
                }
            )
        );
    }

    #[test]
    fn digest_is_deterministic() {
        assert_eq!(
            signing_digest(TokenType::Super, 5, -1, &ctx()),
            signing_digest(TokenType::Super, 5, -1, &ctx())
        );
    }
}
