//! Minimal in-repo stand-in for `parking_lot`: `Mutex` and `RwLock` with the
//! non-poisoning API, backed by `std::sync`. A poisoned std lock means a
//! panic already happened while holding it; parking_lot semantics are to
//! carry on, so we recover the guard.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Non-poisoning mutex.
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Lock, ignoring poison.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Consume and return the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// Non-poisoning reader-writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Shared lock, ignoring poison.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Exclusive lock, ignoring poison.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Consume and return the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_and_rwlock_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);

        let rw = RwLock::new(10);
        assert_eq!(*rw.read(), 10);
        *rw.write() = 11;
        assert_eq!(rw.into_inner(), 11);
    }
}
