//! Minimal in-repo stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this crate reimplements
//! the (small) proptest API surface the workspace's property tests use:
//! `proptest!`, strategies for integer ranges / `any::<T>()` / tuples /
//! `prop::collection::vec` / `prop::array::uniform4` / regex-subset string
//! strategies / `Just` / `prop_oneof!`, and the `prop_map`, `prop_recursive`
//! and `boxed` combinators.
//!
//! Unlike real proptest there is no shrinking and no failure persistence:
//! cases are generated from a deterministic per-test RNG, so failures are
//! reproducible across runs.

use std::marker::PhantomData;
use std::ops::Range;
use std::sync::Arc;

pub mod test_runner {
    /// Deterministic xorshift* generator seeded per test and case.
    pub struct TestRng(u64);

    impl TestRng {
        /// Seed from a test name and case index (FNV-1a over the name).
        pub fn deterministic(name: &str, case: u64) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng(h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1)
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }

        /// Uniform value below `n` (n > 0).
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }

        /// Uniform 128-bit value.
        pub fn next_u128(&mut self) -> u128 {
            ((self.next_u64() as u128) << 64) | self.next_u64() as u128
        }
    }

    /// Per-test configuration. Only `cases` is honored.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Run `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Real proptest defaults to 256; keep test runs quick since the
            // workspace runs some scalar-multiplication-heavy properties in
            // debug builds.
            ProptestConfig { cases: 32 }
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use super::*;

    /// A value generator. The shim's analog of proptest's `Strategy`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Produce one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Recursive structures: `f` receives a boxed self-strategy for the
        /// recursive positions; `depth` bounds the recursion.
        fn prop_recursive<S2, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            f: F,
        ) -> Recursive<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            S2: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S2 + 'static,
        {
            Recursive {
                base: self.boxed(),
                expand: Arc::new(move |inner| f(inner).boxed()),
                depth,
            }
        }

        /// Type-erase the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Arc::new(self))
        }
    }

    /// A type-erased, cheaply cloneable strategy.
    pub struct BoxedStrategy<V>(Arc<dyn Strategy<Value = V>>);

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy(Arc::clone(&self.0))
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            self.0.generate(rng)
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Output of [`Strategy::prop_recursive`].
    pub struct Recursive<V> {
        pub(crate) base: BoxedStrategy<V>,
        pub(crate) expand: Arc<dyn Fn(BoxedStrategy<V>) -> BoxedStrategy<V>>,
        pub(crate) depth: u32,
    }

    impl<V: 'static> Strategy for Recursive<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            if self.depth == 0 || rng.below(2) == 0 {
                return self.base.generate(rng);
            }
            let inner = Recursive {
                base: self.base.clone(),
                expand: Arc::clone(&self.expand),
                depth: self.depth - 1,
            };
            (self.expand)(inner.boxed()).generate(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<V> {
        arms: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// Build from the macro-collected arms.
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty => $via:ident),+ $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u128;
                    self.start + (rng.$via() as u128 % span) as $t
                }
            }
        )+};
    }

    int_range_strategy! {
        u8 => next_u64, u16 => next_u64, u32 => next_u64, u64 => next_u64,
        usize => next_u64, u128 => next_u128,
    }

    macro_rules! signed_range_strategy {
        ($($t:ty),+ $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u128() % span) as i128) as $t
                }
            }
        )+};
    }

    signed_range_strategy!(i8, i16, i32, i64, i128, isize);

    /// Types with a canonical "anything" strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        /// Generate an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),+ $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u128() as $t
                }
            }
        )+};
    }

    int_arbitrary!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.below(2) == 1
        }
    }

    impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
        fn arbitrary(rng: &mut TestRng) -> [T; N] {
            std::array::from_fn(|_| T::arbitrary(rng))
        }
    }

    /// Strategy form of [`Arbitrary`].
    pub struct Any<T>(pub(crate) PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// `any::<T>()` — the canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident / $idx:tt),+))+) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }

    tuple_strategy! {
        (A/0, B/1)
        (A/0, B/1, C/2)
        (A/0, B/1, C/2, D/3)
        (A/0, B/1, C/2, D/3, E/4)
    }

    // ---- regex-subset string strategies ----
    //
    // The workspace uses patterns of the shape `[class]{m,n}` interleaved
    // with escaped literals (e.g. `"[a-z]{1,12}\\(\\)"`). This parser
    // supports exactly: character classes with ranges and literal members,
    // `{m}` / `{m,n}` repetition suffixes, backslash escapes, and literal
    // characters.
    #[derive(Clone)]
    enum RegexPiece {
        Literal(char),
        Class {
            chars: Vec<char>,
            min: u32,
            max: u32,
        },
    }

    fn parse_regex_subset(pattern: &str) -> Vec<RegexPiece> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut pieces = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            match chars[i] {
                '\\' => {
                    i += 1;
                    assert!(i < chars.len(), "dangling escape in pattern {pattern:?}");
                    pieces.push(RegexPiece::Literal(chars[i]));
                    i += 1;
                }
                '[' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == ']')
                        .expect("unclosed class")
                        + i;
                    let mut members = Vec::new();
                    let mut j = i + 1;
                    while j < close {
                        if j + 2 < close && chars[j + 1] == '-' {
                            let (lo, hi) = (chars[j], chars[j + 2]);
                            members.extend((lo..=hi).filter(|c| c.is_ascii()));
                            j += 3;
                        } else {
                            members.push(chars[j]);
                            j += 1;
                        }
                    }
                    i = close + 1;
                    let (min, max) = if i < chars.len() && chars[i] == '{' {
                        let close = chars[i..]
                            .iter()
                            .position(|&c| c == '}')
                            .expect("unclosed repetition")
                            + i;
                        let body: String = chars[i + 1..close].iter().collect();
                        i = close + 1;
                        match body.split_once(',') {
                            Some((m, n)) => (m.parse().unwrap(), n.parse().unwrap()),
                            None => {
                                let m: u32 = body.parse().unwrap();
                                (m, m)
                            }
                        }
                    } else {
                        (1, 1)
                    };
                    pieces.push(RegexPiece::Class {
                        chars: members,
                        min,
                        max,
                    });
                }
                c => {
                    pieces.push(RegexPiece::Literal(c));
                    i += 1;
                }
            }
        }
        pieces
    }

    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            for piece in parse_regex_subset(self) {
                match piece {
                    RegexPiece::Literal(c) => out.push(c),
                    RegexPiece::Class { chars, min, max } => {
                        let n = min + rng.below((max - min + 1) as u64) as u32;
                        for _ in 0..n {
                            out.push(chars[rng.below(chars.len() as u64) as usize]);
                        }
                    }
                }
            }
            out
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Vector of `element` values with length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `prop::collection::vec(element, len)`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod array {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Fixed-size array of 4 values from one strategy.
    pub struct Uniform4<S>(S);

    /// `prop::array::uniform4(element)`.
    pub fn uniform4<S: Strategy>(element: S) -> Uniform4<S> {
        Uniform4(element)
    }

    impl<S: Strategy> Strategy for Uniform4<S> {
        type Value = [S::Value; 4];
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            std::array::from_fn(|_| self.0.generate(rng))
        }
    }
}

/// The `prop::` namespace (`prop::collection::vec`, `prop::array::uniform4`).
pub mod prop {
    pub use super::array;
    pub use super::collection;
}

pub mod prelude {
    pub use super::strategy::{any, Any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use super::test_runner::{ProptestConfig, TestRng};
    pub use super::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Assert inside a property; panics (no shrinking in the shim).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+)
    };
}

/// Inequality assert inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {
        assert_ne!($a, $b)
    };
}

/// Skip the current case when the precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// Uniform choice between strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Property-test entry point; mirrors proptest's macro syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg(<$crate::test_runner::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let __strats = ($($strat,)+);
            for __case in 0..__config.cases as u64 {
                let mut __rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name), __case);
                let ($($arg,)+) = {
                    let ($(ref $arg,)+) = __strats;
                    ($($crate::strategy::Strategy::generate($arg, &mut __rng),)+)
                };
                // Run the body in a closure so `prop_assume!` can skip the
                // case with an early return.
                #[allow(clippy::redundant_closure_call)]
                {
                    (move || $body)();
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic("ranges", 0);
        for _ in 0..200 {
            let v = Strategy::generate(&(3u64..17), &mut rng);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn regex_subset_shapes() {
        let mut rng = TestRng::deterministic("regex", 0);
        for _ in 0..50 {
            let s = Strategy::generate(&"[a-z]{1,12}\\(\\)", &mut rng);
            assert!(s.ends_with("()"));
            let stem = &s[..s.len() - 2];
            assert!((1..=12).contains(&stem.len()));
            assert!(stem.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn macro_binds_arguments(a in 0u64..10, v in prop::collection::vec(any::<u8>(), 0..4)) {
            prop_assert!(a < 10);
            prop_assert!(v.len() < 4);
        }

        #[test]
        fn assume_skips(x in 0u64..4) {
            prop_assume!(x != 1);
            prop_assert_ne!(x, 1);
        }
    }

    #[test]
    fn oneof_and_recursive() {
        #[derive(Clone, Debug, PartialEq)]
        enum Tree {
            Leaf(u8),
            Node(Vec<Tree>),
        }
        let leaf = prop::collection::vec(any::<u8>(), 1..2).prop_map(|v| Tree::Leaf(v[0]));
        let strat = leaf.prop_recursive(3, 16, 4, |inner| {
            prop::collection::vec(inner, 0..3).prop_map(Tree::Node)
        });
        let mut rng = TestRng::deterministic("tree", 0);
        for _ in 0..50 {
            let _ = strat.generate(&mut rng); // must terminate
        }
        let u = prop_oneof![Just(1u8), 2u8..4];
        let v = Strategy::generate(&u, &mut rng);
        assert!((1..4).contains(&v));
    }
}
