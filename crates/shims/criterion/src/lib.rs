//! Minimal in-repo stand-in for `criterion`: wall-clock benchmarking with
//! warm-up, a fixed sample count, and median/mean/min/max plus an
//! outlier-trimmed mean (drop the fastest and slowest ~10% of samples —
//! the cheap cousin of criterion's Tukey analysis, good enough to keep a
//! stray scheduler hiccup from skewing a comparison). No HTML reports or
//! stored baselines — stable, machine-grepable
//! `name ... median <t> mean <t> ...` lines on stdout, plus a
//! programmatic results registry so harness code can export JSON
//! summaries (`BENCH_results.json` / `BENCH_history.jsonl`, which the CI
//! perf smoke diffs run-over-run).

use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup; the shim treats all variants alike.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// One finished measurement.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Fully qualified benchmark id (`group/name`).
    pub id: String,
    /// Median time per iteration.
    pub median: Duration,
    /// Mean time per iteration.
    pub mean: Duration,
    /// Fastest sample.
    pub min: Duration,
    /// Slowest sample.
    pub max: Duration,
    /// Mean with the fastest and slowest ~10% of samples dropped — the
    /// number to compare across runs (outliers from scheduling noise are
    /// excluded on both sides).
    pub trimmed_mean: Duration,
    /// Number of measured samples.
    pub samples: usize,
}

/// The benchmark driver.
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    results: Vec<BenchResult>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_millis(1000),
            sample_size: 30,
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Set the warm-up duration.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Set the measurement window (split evenly across samples).
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Set the number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        self.run_one(id.into(), sample_size, f);
        self
    }

    /// All results measured so far (for JSON export by harness code).
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    fn run_one<F>(&mut self, id: String, sample_size: usize, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher);
        let mut samples = bencher.samples;
        if samples.is_empty() {
            return;
        }
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        let min = samples[0];
        let max = *samples.last().expect("non-empty");
        // Trim ~10% from each tail (at least one sample per side once
        // there are enough samples to spare).
        let trim = if samples.len() >= 5 {
            (samples.len() / 10).max(1)
        } else {
            0
        };
        let kept = &samples[trim..samples.len() - trim];
        let trimmed_mean = kept.iter().sum::<Duration>() / kept.len() as u32;
        println!(
            "{id:<44} median {:>12} mean {:>12} trimmed {:>12} min {:>12} max {:>12} ({} samples)",
            format_duration(median),
            format_duration(mean),
            format_duration(trimmed_mean),
            format_duration(min),
            format_duration(max),
            samples.len()
        );
        self.results.push(BenchResult {
            id,
            median,
            mean,
            min,
            max,
            trimmed_mean,
            samples: samples.len(),
        });
    }

    /// Criterion prints a final summary; the shim has nothing left to say.
    pub fn final_summary(&self) {}
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", ns as f64 / 1_000_000_000.0)
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
        self.criterion.run_one(id, sample_size, f);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Passed to benchmark closures; collects timing samples.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Time `routine` repeatedly.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm up and estimate the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up {
            std::hint::black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed() / warm_iters.max(1) as u32;

        // Split the measurement budget into samples of >= 1 iteration.
        let budget_per_sample = self.measurement / self.sample_size as u32;
        let iters_per_sample = if per_iter.is_zero() {
            1_000
        } else {
            (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u32
        };
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(routine());
            }
            self.samples.push(start.elapsed() / iters_per_sample);
        }
    }

    /// Time `routine` over fresh inputs from `setup`; setup time excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Warm up.
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up {
            std::hint::black_box(routine(setup()));
        }
        // One input per sample: setup excluded from the timed section.
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

/// Declare a benchmark entry point from a config and target functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
            criterion.final_summary();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = <$crate::Criterion as ::std::default::Default>::default();
            targets = $($target),+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20))
            .sample_size(5);
        let mut group = c.benchmark_group("g");
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
        assert_eq!(c.results().len(), 2);
        assert!(c.results().iter().all(|r| r.samples >= 5));
        for r in c.results() {
            assert!(r.min <= r.median && r.median <= r.max);
            assert!(r.min <= r.trimmed_mean && r.trimmed_mean <= r.max);
        }
    }

    #[test]
    fn trimmed_mean_rejects_outliers() {
        // Feed a synthetic sample set through the same aggregation the
        // real driver uses by benchmarking a routine with one injected
        // stall: the trimmed mean must sit far below the raw mean's
        // outlier-dragged value... deterministically, just exercise the
        // arithmetic via a tiny run and sanity-bound the relation.
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(10))
            .sample_size(10);
        c.bench_function("steady", |b| b.iter(|| std::hint::black_box(3u64 * 7)));
        let r = &c.results()[0];
        // With 10 samples, one is trimmed from each side.
        assert!(r.trimmed_mean >= r.min && r.trimmed_mean <= r.max);
    }
}
