//! Minimal in-repo stand-in for the `hex` crate: lowercase encoding and
//! strict decoding, the only API surface the workspace uses.

/// Decoding failure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FromHexError {
    /// A character outside `[0-9a-fA-F]`.
    InvalidHexCharacter {
        /// The offending character.
        c: char,
        /// Its byte index in the input.
        index: usize,
    },
    /// Input length was odd.
    OddLength,
}

impl std::fmt::Display for FromHexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FromHexError::InvalidHexCharacter { c, index } => {
                write!(f, "invalid hex character {c:?} at index {index}")
            }
            FromHexError::OddLength => write!(f, "odd number of hex digits"),
        }
    }
}

impl std::error::Error for FromHexError {}

/// Encode bytes as lowercase hex.
pub fn encode(data: impl AsRef<[u8]>) -> String {
    const TABLE: &[u8; 16] = b"0123456789abcdef";
    let data = data.as_ref();
    let mut out = String::with_capacity(data.len() * 2);
    for &b in data {
        out.push(TABLE[(b >> 4) as usize] as char);
        out.push(TABLE[(b & 0x0f) as usize] as char);
    }
    out
}

fn nibble(c: u8, index: usize) -> Result<u8, FromHexError> {
    match c {
        b'0'..=b'9' => Ok(c - b'0'),
        b'a'..=b'f' => Ok(c - b'a' + 10),
        b'A'..=b'F' => Ok(c - b'A' + 10),
        _ => Err(FromHexError::InvalidHexCharacter {
            c: c as char,
            index,
        }),
    }
}

/// Decode a hex string (no `0x` prefix handling; both cases accepted).
pub fn decode(data: impl AsRef<[u8]>) -> Result<Vec<u8>, FromHexError> {
    let data = data.as_ref();
    if data.len() % 2 != 0 {
        return Err(FromHexError::OddLength);
    }
    let mut out = Vec::with_capacity(data.len() / 2);
    for (i, pair) in data.chunks_exact(2).enumerate() {
        out.push((nibble(pair[0], i * 2)? << 4) | nibble(pair[1], i * 2 + 1)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        assert_eq!(encode([0xde, 0xad, 0xbe, 0xef]), "deadbeef");
        assert_eq!(decode("deadbeef").unwrap(), vec![0xde, 0xad, 0xbe, 0xef]);
        assert_eq!(decode("DEADBEEF").unwrap(), vec![0xde, 0xad, 0xbe, 0xef]);
    }

    #[test]
    fn rejects_bad_input() {
        assert_eq!(decode("abc"), Err(FromHexError::OddLength));
        assert!(matches!(
            decode("zz"),
            Err(FromHexError::InvalidHexCharacter { c: 'z', index: 0 })
        ));
    }
}
