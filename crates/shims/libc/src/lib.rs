//! In-repo shim for the `libc` crate: the build environment has no
//! registry access, and SMACS only needs a sliver of the real crate —
//! the readiness syscalls behind the HTTP reactor (`epoll_create1` /
//! `epoll_ctl` / `epoll_wait`, `eventfd` for wakeups) plus the odd
//! resource probe (`getrlimit`/`setrlimit`, `sysconf`). Declarations
//! are plain `extern "C"` against the system libc that `std` already
//! links, so no build script or registry dependency is required.
//!
//! Linux-only by design (CI runs ubuntu; ROADMAP direction 2 names
//! epoll explicitly). On other targets the functions are compiled as
//! stubs that fail with `ENOSYS`-style `-1` so the workspace still
//! builds; the reactor surfaces that as an `io::Error` at bind time.
#![allow(non_camel_case_types)]

pub type c_int = i32;
pub type c_uint = u32;
pub type c_long = i64;
pub type c_ulong = u64;
pub type c_void = core::ffi::c_void;
pub type size_t = usize;
pub type ssize_t = isize;
pub type rlim_t = u64;

/// `EPOLL_EVENTS` bits and `epoll_ctl` ops (values from the Linux ABI).
pub const EPOLLIN: u32 = 0x001;
pub const EPOLLPRI: u32 = 0x002;
pub const EPOLLOUT: u32 = 0x004;
pub const EPOLLERR: u32 = 0x008;
pub const EPOLLHUP: u32 = 0x010;
pub const EPOLLRDHUP: u32 = 0x2000;
pub const EPOLLONESHOT: u32 = 1 << 30;
pub const EPOLL_CTL_ADD: c_int = 1;
pub const EPOLL_CTL_DEL: c_int = 2;
pub const EPOLL_CTL_MOD: c_int = 3;
pub const EPOLL_CLOEXEC: c_int = 0o2000000;

pub const EFD_CLOEXEC: c_int = 0o2000000;
pub const EFD_NONBLOCK: c_int = 0o4000;

pub const RLIMIT_NOFILE: c_int = 7;
pub const _SC_CLK_TCK: c_int = 2;

/// One epoll registration/notification. The kernel ABI packs this
/// struct on x86 so the 64-bit user datum straddles the usual
/// alignment — mirror the real crate's layout exactly.
#[repr(C)]
#[cfg_attr(any(target_arch = "x86_64", target_arch = "x86"), repr(packed))]
#[derive(Clone, Copy)]
pub struct epoll_event {
    pub events: u32,
    pub u64: u64,
}

#[repr(C)]
#[derive(Clone, Copy)]
pub struct rlimit {
    pub rlim_cur: rlim_t,
    pub rlim_max: rlim_t,
}

#[cfg(target_os = "linux")]
extern "C" {
    pub fn epoll_create1(flags: c_int) -> c_int;
    pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut epoll_event) -> c_int;
    pub fn epoll_wait(
        epfd: c_int,
        events: *mut epoll_event,
        maxevents: c_int,
        timeout: c_int,
    ) -> c_int;
    pub fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    pub fn read(fd: c_int, buf: *mut c_void, count: size_t) -> ssize_t;
    pub fn write(fd: c_int, buf: *const c_void, count: size_t) -> ssize_t;
    pub fn close(fd: c_int) -> c_int;
    pub fn listen(sockfd: c_int, backlog: c_int) -> c_int;
    pub fn getrlimit(resource: c_int, rlim: *mut rlimit) -> c_int;
    pub fn setrlimit(resource: c_int, rlim: *const rlimit) -> c_int;
    pub fn sysconf(name: c_int) -> c_long;
}

// Non-Linux stubs: every call fails, callers see it as an io::Error.
#[cfg(not(target_os = "linux"))]
mod stubs {
    use super::*;
    pub unsafe fn epoll_create1(_flags: c_int) -> c_int {
        -1
    }
    pub unsafe fn epoll_ctl(_e: c_int, _op: c_int, _fd: c_int, _ev: *mut epoll_event) -> c_int {
        -1
    }
    pub unsafe fn epoll_wait(_e: c_int, _evs: *mut epoll_event, _max: c_int, _t: c_int) -> c_int {
        -1
    }
    pub unsafe fn eventfd(_initval: c_uint, _flags: c_int) -> c_int {
        -1
    }
    pub unsafe fn read(_fd: c_int, _buf: *mut c_void, _count: size_t) -> ssize_t {
        -1
    }
    pub unsafe fn write(_fd: c_int, _buf: *const c_void, _count: size_t) -> ssize_t {
        -1
    }
    pub unsafe fn close(_fd: c_int) -> c_int {
        -1
    }
    pub unsafe fn listen(_sockfd: c_int, _backlog: c_int) -> c_int {
        -1
    }
    pub unsafe fn getrlimit(_resource: c_int, _rlim: *mut rlimit) -> c_int {
        -1
    }
    pub unsafe fn setrlimit(_resource: c_int, _rlim: *const rlimit) -> c_int {
        -1
    }
    pub unsafe fn sysconf(_name: c_int) -> c_long {
        -1
    }
}
#[cfg(not(target_os = "linux"))]
pub use stubs::*;

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;

    #[test]
    fn epoll_round_trip_on_an_eventfd() {
        unsafe {
            let ep = epoll_create1(EPOLL_CLOEXEC);
            assert!(ep >= 0, "epoll_create1 failed");
            let efd = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
            assert!(efd >= 0, "eventfd failed");

            let mut ev = epoll_event {
                events: EPOLLIN,
                u64: 42,
            };
            assert_eq!(epoll_ctl(ep, EPOLL_CTL_ADD, efd, &mut ev), 0);

            // Nothing written yet: a zero-timeout wait sees no events.
            let mut out = [epoll_event { events: 0, u64: 0 }; 4];
            assert_eq!(epoll_wait(ep, out.as_mut_ptr(), 4, 0), 0);

            // Bump the counter: the eventfd becomes readable.
            let one: u64 = 1;
            assert_eq!(
                write(efd, (&one as *const u64).cast(), 8),
                8,
                "eventfd write"
            );
            let n = epoll_wait(ep, out.as_mut_ptr(), 4, 1000);
            assert_eq!(n, 1, "expected exactly one readiness event");
            let got = out[0].u64;
            assert_eq!(got, 42);

            // Drain and confirm it goes quiet again.
            let mut val: u64 = 0;
            assert_eq!(read(efd, (&mut val as *mut u64).cast(), 8), 8);
            assert_eq!(val, 1);
            assert_eq!(epoll_wait(ep, out.as_mut_ptr(), 4, 0), 0);

            close(efd);
            close(ep);
        }
    }

    #[test]
    fn rlimit_and_sysconf_answer() {
        unsafe {
            let mut lim = rlimit {
                rlim_cur: 0,
                rlim_max: 0,
            };
            assert_eq!(getrlimit(RLIMIT_NOFILE, &mut lim), 0);
            assert!(lim.rlim_cur > 0 && lim.rlim_cur <= lim.rlim_max);
            assert!(sysconf(_SC_CLK_TCK) > 0);
        }
    }
}
