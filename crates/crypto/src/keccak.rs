//! keccak256 — Ethereum's ubiquitous hash function.
//!
//! Implemented from scratch (keccak-f[1600] sponge, rate 1088, the original
//! Keccak `0x01` domain padding — *not* NIST SHA-3's `0x06`), since the
//! build environment has no access to external crates. Verified against the
//! well-known empty-string / `"abc"` / ERC-20-selector vectors below.

use smacs_primitives::H256;

const RATE: usize = 136; // 1088-bit rate for a 256-bit capacity-512 sponge
const ROUNDS: usize = 24;

const ROUND_CONSTANTS: [u64; ROUNDS] = [
    0x0000000000000001,
    0x0000000000008082,
    0x800000000000808a,
    0x8000000080008000,
    0x000000000000808b,
    0x0000000080000001,
    0x8000000080008081,
    0x8000000000008009,
    0x000000000000008a,
    0x0000000000000088,
    0x0000000080008009,
    0x000000008000000a,
    0x000000008000808b,
    0x800000000000008b,
    0x8000000000008089,
    0x8000000000008003,
    0x8000000000008002,
    0x8000000000000080,
    0x000000000000800a,
    0x800000008000000a,
    0x8000000080008081,
    0x8000000000008080,
    0x0000000080000001,
    0x8000000080008008,
];

// Rotation offsets and the pi-step lane permutation, both in the standard
// x + 5y lane order.
const ROTATIONS: [u32; 25] = [
    0, 1, 62, 28, 27, 36, 44, 6, 55, 20, 3, 10, 43, 25, 39, 41, 45, 15, 21, 8, 18, 2, 61, 56, 14,
];

fn keccak_f1600(state: &mut [u64; 25]) {
    for &rc in &ROUND_CONSTANTS {
        // θ
        let mut c = [0u64; 5];
        for x in 0..5 {
            c[x] = state[x] ^ state[x + 5] ^ state[x + 10] ^ state[x + 15] ^ state[x + 20];
        }
        for x in 0..5 {
            let d = c[(x + 4) % 5] ^ c[(x + 1) % 5].rotate_left(1);
            for y in 0..5 {
                state[x + 5 * y] ^= d;
            }
        }
        // ρ and π
        let mut b = [0u64; 25];
        for x in 0..5 {
            for y in 0..5 {
                let from = x + 5 * y;
                let to = y + 5 * ((2 * x + 3 * y) % 5);
                b[to] = state[from].rotate_left(ROTATIONS[from]);
            }
        }
        // χ
        for y in 0..5 {
            for x in 0..5 {
                state[x + 5 * y] =
                    b[x + 5 * y] ^ (!b[(x + 1) % 5 + 5 * y] & b[(x + 2) % 5 + 5 * y]);
            }
        }
        // ι
        state[0] ^= rc;
    }
}

/// Hash `data` with keccak256 (the original Keccak, not NIST SHA-3).
pub fn keccak256(data: &[u8]) -> H256 {
    let mut hasher = Keccak256::new();
    hasher.update(data);
    hasher.finalize()
}

/// Hash the concatenation of several byte slices without materializing the
/// concatenated buffer (the `abi.encodePacked` + `keccak256` idiom Alg. 1's
/// payload reconstruction uses).
pub fn keccak256_concat(parts: &[&[u8]]) -> H256 {
    let mut hasher = Keccak256::new();
    for part in parts {
        hasher.update(part);
    }
    hasher.finalize()
}

/// An incremental keccak256 hasher for streaming use.
pub struct Keccak256 {
    state: [u64; 25],
    buffer: [u8; RATE],
    buffered: usize,
}

impl Keccak256 {
    /// Start a new hash computation.
    pub fn new() -> Self {
        Keccak256 {
            state: [0; 25],
            buffer: [0; RATE],
            buffered: 0,
        }
    }

    fn absorb_block(&mut self) {
        for (lane, chunk) in self.buffer.chunks_exact(8).enumerate() {
            self.state[lane] ^= u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        keccak_f1600(&mut self.state);
        self.buffered = 0;
    }

    /// Absorb more input.
    pub fn update(&mut self, mut data: &[u8]) {
        while !data.is_empty() {
            let take = (RATE - self.buffered).min(data.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&data[..take]);
            self.buffered += take;
            data = &data[take..];
            if self.buffered == RATE {
                self.absorb_block();
            }
        }
    }

    /// Finish and produce the digest.
    pub fn finalize(mut self) -> H256 {
        // Original-Keccak multi-rate padding: 0x01 … 0x80 (possibly the same
        // byte, 0x81, when one byte of room remains).
        self.buffer[self.buffered..].fill(0);
        self.buffer[self.buffered] = 0x01;
        self.buffer[RATE - 1] |= 0x80;
        self.absorb_block();

        let mut out = [0u8; 32];
        for (chunk, lane) in out.chunks_exact_mut(8).zip(self.state.iter()) {
            chunk.copy_from_slice(&lane.to_le_bytes());
        }
        H256(out)
    }
}

impl Default for Keccak256 {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Well-known keccak256 test vectors.
    #[test]
    fn empty_input_vector() {
        assert_eq!(
            keccak256(b"").to_hex(),
            "0xc5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470"
        );
    }

    #[test]
    fn abc_vector() {
        assert_eq!(
            keccak256(b"abc").to_hex(),
            "0x4e03657aea45a94fc7d47ba826c8d667c0d1e6e33a64a036ec44f58fa12d6c45"
        );
    }

    #[test]
    fn solidity_selector_vector() {
        // The canonical ERC-20 transfer selector: keccak("transfer(address,uint256)")[..4] = a9059cbb.
        let h = keccak256(b"transfer(address,uint256)");
        assert_eq!(&h.0[..4], &[0xa9, 0x05, 0x9c, 0xbb]);
    }

    #[test]
    fn rate_boundary_inputs() {
        // Exercise the padding around the 136-byte rate boundary.
        for len in [135usize, 136, 137, 271, 272, 273] {
            let data = vec![0x5au8; len];
            let whole = keccak256(&data);
            let mut streamed = Keccak256::new();
            for chunk in data.chunks(17) {
                streamed.update(chunk);
            }
            assert_eq!(whole, streamed.finalize(), "len={len}");
        }
    }

    #[test]
    fn concat_matches_plain() {
        let joined = keccak256(b"hello world");
        let parts = keccak256_concat(&[b"hello", b" ", b"world"]);
        assert_eq!(joined, parts);
    }

    #[test]
    fn streaming_matches_plain() {
        let mut h = Keccak256::new();
        h.update(b"str");
        h.update(b"eam");
        assert_eq!(h.finalize(), keccak256(b"stream"));
    }
}
