//! keccak256 — Ethereum's ubiquitous hash function.

use smacs_primitives::H256;
use tiny_keccak::{Hasher, Keccak};

/// Hash `data` with keccak256 (the original Keccak, not NIST SHA-3).
pub fn keccak256(data: &[u8]) -> H256 {
    let mut hasher = Keccak::v256();
    hasher.update(data);
    let mut out = [0u8; 32];
    hasher.finalize(&mut out);
    H256(out)
}

/// Hash the concatenation of several byte slices without materializing the
/// concatenated buffer (the `abi.encodePacked` + `keccak256` idiom Alg. 1's
/// payload reconstruction uses).
pub fn keccak256_concat(parts: &[&[u8]]) -> H256 {
    let mut hasher = Keccak::v256();
    for part in parts {
        hasher.update(part);
    }
    let mut out = [0u8; 32];
    hasher.finalize(&mut out);
    H256(out)
}

/// An incremental keccak256 hasher for streaming use.
pub struct Keccak256 {
    inner: Keccak,
}

impl Keccak256 {
    /// Start a new hash computation.
    pub fn new() -> Self {
        Keccak256 {
            inner: Keccak::v256(),
        }
    }

    /// Absorb more input.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Finish and produce the digest.
    pub fn finalize(self) -> H256 {
        let mut out = [0u8; 32];
        self.inner.finalize(&mut out);
        H256(out)
    }
}

impl Default for Keccak256 {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Well-known keccak256 test vectors.
    #[test]
    fn empty_input_vector() {
        assert_eq!(
            keccak256(b"").to_hex(),
            "0xc5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470"
        );
    }

    #[test]
    fn abc_vector() {
        assert_eq!(
            keccak256(b"abc").to_hex(),
            "0x4e03657aea45a94fc7d47ba826c8d667c0d1e6e33a64a036ec44f58fa12d6c45"
        );
    }

    #[test]
    fn solidity_selector_vector() {
        // The canonical ERC-20 transfer selector: keccak("transfer(address,uint256)")[..4] = a9059cbb.
        let h = keccak256(b"transfer(address,uint256)");
        assert_eq!(&h.0[..4], &[0xa9, 0x05, 0x9c, 0xbb]);
    }

    #[test]
    fn concat_matches_plain() {
        let joined = keccak256(b"hello world");
        let parts = keccak256_concat(&[b"hello", b" ", b"world"]);
        assert_eq!(joined, parts);
    }

    #[test]
    fn streaming_matches_plain() {
        let mut h = Keccak256::new();
        h.update(b"str");
        h.update(b"eam");
        assert_eq!(h.finalize(), keccak256(b"stream"));
    }
}
