//! secp256k1 group and ECDSA arithmetic, implemented from scratch.
//!
//! The build environment has no external crates, so this module provides the
//! curve math `k256` used to supply: field/scalar arithmetic over the real
//! secp256k1 parameters, Jacobian point arithmetic, public-key derivation,
//! recoverable signing, and public-key recovery. It is written for clarity
//! and determinism, not constant-time operation — the workspace uses it to
//! *simulate* Ethereum's signature scheme, never to protect production key
//! material.
//!
//! Numbers are 256-bit little-endian limb arrays (`[u64; 4]`). Both moduli
//! have the Solinas shape `2^256 − c`, so wide products reduce by folding
//! the high half with `hi·2^256 ≡ hi·c (mod m)` until the value fits 256
//! bits.

/// 256-bit value as little-endian 64-bit limbs.
pub type U256L = [u64; 4];

/// The field prime `p = 2^256 − 2^32 − 977`.
pub const P: U256L = [
    0xFFFF_FFFE_FFFF_FC2F,
    0xFFFF_FFFF_FFFF_FFFF,
    0xFFFF_FFFF_FFFF_FFFF,
    0xFFFF_FFFF_FFFF_FFFF,
];
const C_P: U256L = [0x1_0000_03D1, 0, 0, 0];

/// The group order `n`.
pub const N: U256L = [
    0xBFD2_5E8C_D036_4141,
    0xBAAE_DCE6_AF48_A03B,
    0xFFFF_FFFF_FFFF_FFFE,
    0xFFFF_FFFF_FFFF_FFFF,
];
const C_N: U256L = [0x402D_A173_2FC9_BEBF, 0x4551_2319_50B7_5FC4, 1, 0];

/// Generator x-coordinate.
const GX: U256L = [
    0x59F2_815B_16F8_1798,
    0x029B_FCDB_2DCE_28D9,
    0x55A0_6295_CE87_0B07,
    0x79BE_667E_F9DC_BBAC,
];
/// Generator y-coordinate.
const GY: U256L = [
    0x9C47_D08F_FB10_D4B8,
    0xFD17_B448_A685_5419,
    0x5DA4_FBFC_0E11_08A8,
    0x483A_DA77_26A3_C465,
];

pub(crate) const ZERO: U256L = [0, 0, 0, 0];
const ONE: U256L = [1, 0, 0, 0];
const SEVEN: U256L = [7, 0, 0, 0];

// ---- bignum helpers ----

/// Compare little-endian limb arrays.
pub fn cmp(a: &U256L, b: &U256L) -> std::cmp::Ordering {
    for i in (0..4).rev() {
        match a[i].cmp(&b[i]) {
            std::cmp::Ordering::Equal => continue,
            other => return other,
        }
    }
    std::cmp::Ordering::Equal
}

/// True iff all limbs are zero.
pub fn is_zero(a: &U256L) -> bool {
    *a == ZERO
}

fn sub_raw(a: &U256L, b: &U256L) -> (U256L, bool) {
    let mut out = ZERO;
    let mut borrow = false;
    for i in 0..4 {
        let (d, b1) = a[i].overflowing_sub(b[i]);
        let (d, b2) = d.overflowing_sub(borrow as u64);
        out[i] = d;
        borrow = b1 || b2;
    }
    (out, borrow)
}

fn add_raw(a: &U256L, b: &U256L) -> (U256L, bool) {
    let mut out = ZERO;
    let mut carry = false;
    for i in 0..4 {
        let (s, c1) = a[i].overflowing_add(b[i]);
        let (s, c2) = s.overflowing_add(carry as u64);
        out[i] = s;
        carry = c1 || c2;
    }
    (out, carry)
}

/// `a + b (mod m)`; inputs must already be `< m`.
pub fn add_mod(a: &U256L, b: &U256L, m: &U256L) -> U256L {
    let (sum, carry) = add_raw(a, b);
    if carry || cmp(&sum, m) != std::cmp::Ordering::Less {
        sub_raw(&sum, m).0
    } else {
        sum
    }
}

/// `a − b (mod m)`; inputs must already be `< m`.
pub fn sub_mod(a: &U256L, b: &U256L, m: &U256L) -> U256L {
    let (diff, borrow) = sub_raw(a, b);
    if borrow {
        add_raw(&diff, m).0
    } else {
        diff
    }
}

fn mul_wide(a: &U256L, b: &U256L) -> [u64; 8] {
    let mut out = [0u64; 8];
    for i in 0..4 {
        let mut carry: u128 = 0;
        for j in 0..4 {
            let acc = out[i + j] as u128 + a[i] as u128 * b[j] as u128 + carry;
            out[i + j] = acc as u64;
            carry = acc >> 64;
        }
        let mut k = i + 4;
        while carry != 0 {
            let acc = out[k] as u128 + carry;
            out[k] = acc as u64;
            carry = acc >> 64;
            k += 1;
        }
    }
    out
}

fn reduce_wide(mut w: [u64; 8], m: &U256L, c: &U256L) -> U256L {
    // Fold hi·2^256 ≡ hi·c until the high half is clear. With c < 2^130
    // each fold shrinks the value by ≥ 126 bits, so this terminates in ≤ 3
    // iterations.
    while w[4] != 0 || w[5] != 0 || w[6] != 0 || w[7] != 0 {
        let hi = [w[4], w[5], w[6], w[7]];
        let lo = [w[0], w[1], w[2], w[3]];
        let mut folded = mul_wide(&hi, c);
        let mut carry = false;
        for i in 0..4 {
            let (s, c1) = folded[i].overflowing_add(lo[i]);
            let (s, c2) = s.overflowing_add(carry as u64);
            folded[i] = s;
            carry = c1 || c2;
        }
        let mut k = 4;
        while carry {
            let (s, c1) = folded[k].overflowing_add(1);
            folded[k] = s;
            carry = c1;
            k += 1;
        }
        w = folded;
    }
    let mut r = [w[0], w[1], w[2], w[3]];
    while cmp(&r, m) != std::cmp::Ordering::Less {
        r = sub_raw(&r, m).0;
    }
    r
}

/// `a · b (mod m)` for `m = 2^256 − c`.
pub fn mul_mod(a: &U256L, b: &U256L, m: &U256L, c: &U256L) -> U256L {
    reduce_wide(mul_wide(a, b), m, c)
}

/// `a^e (mod m)` by square-and-multiply.
pub fn pow_mod(a: &U256L, e: &U256L, m: &U256L, c: &U256L) -> U256L {
    let mut result = ONE;
    let mut started = false;
    for i in (0..256).rev() {
        if started {
            result = mul_mod(&result, &result, m, c);
        }
        if (e[i / 64] >> (i % 64)) & 1 == 1 {
            if started {
                result = mul_mod(&result, a, m, c);
            } else {
                result = *a;
                started = true;
            }
        }
    }
    if started {
        result
    } else {
        ONE
    }
}

/// Modular inverse via Fermat (`m` prime, `a` non-zero).
pub fn inv_mod(a: &U256L, m: &U256L, c: &U256L) -> U256L {
    let two = [2, 0, 0, 0];
    let e = sub_raw(m, &two).0;
    pow_mod(a, &e, m, c)
}

/// Parse 32 big-endian bytes.
pub fn from_be_bytes(bytes: &[u8; 32]) -> U256L {
    let mut out = ZERO;
    for i in 0..4 {
        out[3 - i] = u64::from_be_bytes(bytes[i * 8..(i + 1) * 8].try_into().expect("8 bytes"));
    }
    out
}

/// Render as 32 big-endian bytes.
pub fn to_be_bytes(a: &U256L) -> [u8; 32] {
    let mut out = [0u8; 32];
    for i in 0..4 {
        out[i * 8..(i + 1) * 8].copy_from_slice(&a[3 - i].to_be_bytes());
    }
    out
}

/// Reduce an arbitrary 256-bit value modulo `m` (single conditional
/// subtraction suffices because `m > 2^255`).
pub fn reduce_bytes(bytes: &[u8; 32], m: &U256L) -> U256L {
    let v = from_be_bytes(bytes);
    if cmp(&v, m) != std::cmp::Ordering::Less {
        sub_raw(&v, m).0
    } else {
        v
    }
}

// ---- field shorthand ----

fn fmul(a: &U256L, b: &U256L) -> U256L {
    mul_mod(a, b, &P, &C_P)
}

fn fsqr(a: &U256L) -> U256L {
    fmul(a, a)
}

fn fadd(a: &U256L, b: &U256L) -> U256L {
    add_mod(a, b, &P)
}

fn fsub(a: &U256L, b: &U256L) -> U256L {
    sub_mod(a, b, &P)
}

fn finv(a: &U256L) -> U256L {
    inv_mod(a, &P, &C_P)
}

/// Square root mod p (p ≡ 3 mod 4): `a^((p+1)/4)`; verify before use.
fn fsqrt(a: &U256L) -> U256L {
    // (p+1)/4, precomputed.
    const E: U256L = [
        0xFFFF_FFFF_BFFF_FF0C,
        0xFFFF_FFFF_FFFF_FFFF,
        0xFFFF_FFFF_FFFF_FFFF,
        0x3FFF_FFFF_FFFF_FFFF,
    ];
    pow_mod(a, &E, &P, &C_P)
}

// ---- points ----

/// A curve point in Jacobian coordinates; `z == 0` encodes infinity.
#[derive(Clone, Copy, Debug)]
pub struct Point {
    x: U256L,
    y: U256L,
    z: U256L,
}

/// An affine point (never infinity).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Affine {
    /// x-coordinate.
    pub x: U256L,
    /// y-coordinate.
    pub y: U256L,
}

impl Point {
    /// The point at infinity.
    pub const INFINITY: Point = Point {
        x: ONE,
        y: ONE,
        z: ZERO,
    };

    /// The group generator.
    pub fn generator() -> Point {
        Point {
            x: GX,
            y: GY,
            z: ONE,
        }
    }

    /// Lift an affine point.
    pub fn from_affine(a: &Affine) -> Point {
        Point {
            x: a.x,
            y: a.y,
            z: ONE,
        }
    }

    /// True iff this is the point at infinity.
    pub fn is_infinity(&self) -> bool {
        is_zero(&self.z)
    }

    /// Normalize to affine coordinates (`None` for infinity).
    pub fn to_affine(&self) -> Option<Affine> {
        if self.is_infinity() {
            return None;
        }
        let zinv = finv(&self.z);
        let zinv2 = fsqr(&zinv);
        let zinv3 = fmul(&zinv2, &zinv);
        Some(Affine {
            x: fmul(&self.x, &zinv2),
            y: fmul(&self.y, &zinv3),
        })
    }

    /// Point doubling (a = 0 curve).
    pub fn double(&self) -> Point {
        if self.is_infinity() || is_zero(&self.y) {
            return Point::INFINITY;
        }
        let y2 = fsqr(&self.y);
        let s = {
            // 4·X·Y²
            let t = fmul(&self.x, &y2);
            let t = fadd(&t, &t);
            fadd(&t, &t)
        };
        let m = {
            // 3·X²
            let x2 = fsqr(&self.x);
            fadd(&fadd(&x2, &x2), &x2)
        };
        let x3 = fsub(&fsqr(&m), &fadd(&s, &s));
        let y3 = {
            // M·(S − X3) − 8·Y⁴
            let y4 = fsqr(&y2);
            let y4_8 = {
                let t = fadd(&y4, &y4);
                let t = fadd(&t, &t);
                fadd(&t, &t)
            };
            fsub(&fmul(&m, &fsub(&s, &x3)), &y4_8)
        };
        let z3 = {
            let t = fmul(&self.y, &self.z);
            fadd(&t, &t)
        };
        Point {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// General point addition.
    pub fn add(&self, other: &Point) -> Point {
        if self.is_infinity() {
            return *other;
        }
        if other.is_infinity() {
            return *self;
        }
        let z1z1 = fsqr(&self.z);
        let z2z2 = fsqr(&other.z);
        let u1 = fmul(&self.x, &z2z2);
        let u2 = fmul(&other.x, &z1z1);
        let s1 = fmul(&self.y, &fmul(&z2z2, &other.z));
        let s2 = fmul(&other.y, &fmul(&z1z1, &self.z));
        if u1 == u2 {
            return if s1 == s2 {
                self.double()
            } else {
                Point::INFINITY
            };
        }
        let h = fsub(&u2, &u1);
        let r = fsub(&s2, &s1);
        let h2 = fsqr(&h);
        let h3 = fmul(&h2, &h);
        let u1h2 = fmul(&u1, &h2);
        let x3 = fsub(&fsub(&fsqr(&r), &h3), &fadd(&u1h2, &u1h2));
        let y3 = fsub(&fmul(&r, &fsub(&u1h2, &x3)), &fmul(&s1, &h3));
        let z3 = fmul(&h, &fmul(&self.z, &other.z));
        Point {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// Scalar multiplication for an arbitrary base point, via a width-5
    /// wNAF ladder over precomputed odd multiples (`P, 3P, …, 15P`,
    /// batch-normalized to affine with one inversion).
    ///
    /// Versus the old double-and-add this trades ~128 general Jacobian
    /// additions for ~43 mixed additions plus a tiny precompute — the
    /// dominant cost of `recover` (on-chain `ecrecover` simulation and
    /// the TS's request-signature checks), cutting it by roughly half.
    pub fn mul(&self, scalar: &U256L) -> Point {
        if is_zero(scalar) || self.is_infinity() {
            return Point::INFINITY;
        }
        // Odd multiples 1P, 3P, …, 15P. On secp256k1 (prime order,
        // cofactor 1) none of these can be infinity for a finite on-curve
        // base; the guard below keeps garbage inputs on the slow path
        // rather than corrupting the batch normalization.
        let two = self.double();
        let mut jac = [Point::INFINITY; 8];
        let mut cur = *self;
        for slot in &mut jac {
            if cur.is_infinity() || two.is_infinity() {
                return self.mul_binary(scalar);
            }
            *slot = cur;
            cur = cur.add(&two);
        }
        let table = batch_to_affine(&jac);

        let (digits, len) = wnaf5(scalar);
        let mut acc = Point::INFINITY;
        for i in (0..len).rev() {
            acc = acc.double();
            let d = digits[i];
            if d != 0 {
                let mut entry = table[(d.unsigned_abs() as usize - 1) / 2];
                if d < 0 {
                    entry.y = sub_mod(&ZERO, &entry.y, &P);
                }
                acc = acc.add_affine(&entry);
            }
        }
        acc
    }

    /// The plain double-and-add ladder (MSB first) — fallback for
    /// degenerate bases and the reference the wNAF path is tested
    /// against.
    fn mul_binary(&self, scalar: &U256L) -> Point {
        let mut acc = Point::INFINITY;
        for i in (0..256).rev() {
            acc = acc.double();
            if (scalar[i / 64] >> (i % 64)) & 1 == 1 {
                acc = acc.add(self);
            }
        }
        acc
    }

    /// Mixed addition: `self + other` with `other` affine (z = 1). Saves
    /// ~5 field multiplications over the general Jacobian add — the inner
    /// loop of fixed-base multiplication.
    pub fn add_affine(&self, other: &Affine) -> Point {
        if self.is_infinity() {
            return Point::from_affine(other);
        }
        let z1z1 = fsqr(&self.z);
        let u2 = fmul(&other.x, &z1z1);
        let s2 = fmul(&other.y, &fmul(&z1z1, &self.z));
        if self.x == u2 {
            return if self.y == s2 {
                self.double()
            } else {
                Point::INFINITY
            };
        }
        let h = fsub(&u2, &self.x);
        let r = fsub(&s2, &self.y);
        let h2 = fsqr(&h);
        let h3 = fmul(&h2, &h);
        let u1h2 = fmul(&self.x, &h2);
        let x3 = fsub(&fsub(&fsqr(&r), &h3), &fadd(&u1h2, &u1h2));
        let y3 = fsub(&fmul(&r, &fsub(&u1h2, &x3)), &fmul(&self.y, &h3));
        let z3 = fmul(&h, &self.z);
        Point {
            x: x3,
            y: y3,
            z: z3,
        }
    }
}

// ---- wNAF recoding ----

/// Decompose a 256-bit scalar into width-5 NAF digits, least significant
/// first: each digit is odd with `|d| ≤ 15` (or zero), and any two
/// non-zero digits are at least 5 positions apart, so a 256-bit scalar
/// averages ~43 point additions instead of ~128.
///
/// Returns the digit buffer and its length (≤ 257: borrowing into the
/// top window can carry one position past the input width).
fn wnaf5(scalar: &U256L) -> ([i8; 257], usize) {
    // A fifth limb absorbs the transient carry past 2^256.
    let mut k = [scalar[0], scalar[1], scalar[2], scalar[3], 0u64];
    let mut digits = [0i8; 257];
    let mut len = 0;
    while k.iter().any(|&limb| limb != 0) {
        if k[0] & 1 == 1 {
            let t = (k[0] & 31) as i8; // odd, 1..=31
            let d = if t >= 16 { t - 32 } else { t };
            digits[len] = d;
            if d >= 0 {
                sub_small(&mut k, d as u64);
            } else {
                add_small(&mut k, (-d) as u64);
            }
        }
        shr1(&mut k);
        len += 1;
    }
    (digits, len)
}

fn sub_small(k: &mut [u64; 5], v: u64) {
    let (d, mut borrow) = k[0].overflowing_sub(v);
    k[0] = d;
    let mut i = 1;
    while borrow && i < 5 {
        let (d, b) = k[i].overflowing_sub(1);
        k[i] = d;
        borrow = b;
        i += 1;
    }
}

fn add_small(k: &mut [u64; 5], v: u64) {
    let (s, mut carry) = k[0].overflowing_add(v);
    k[0] = s;
    let mut i = 1;
    while carry && i < 5 {
        let (s, c) = k[i].overflowing_add(1);
        k[i] = s;
        carry = c;
        i += 1;
    }
}

fn shr1(k: &mut [u64; 5]) {
    for i in 0..5 {
        k[i] >>= 1;
        if i + 1 < 5 {
            k[i] |= (k[i + 1] & 1) << 63;
        }
    }
}

// ---- fixed-base generator multiplication ----
//
// Every ECDSA sign and half of every recover multiplies the *generator* by
// a scalar. A one-time table of `j·16^i·G` (i < 64 windows, j in 1..=15)
// turns that from 256 doubles + ~128 general adds into at most 64 mixed
// additions — the ~4-8x issuance speedup the ROADMAP called out. The table
// is ~60 KB, built lazily on first use (a few ms, amortized forever).

const FB_WINDOWS: usize = 64; // 256 bits / 4-bit windows
const FB_ENTRIES: usize = 15; // non-zero digits per window

fn fb_table() -> &'static [Affine] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<Vec<Affine>> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut jac = Vec::with_capacity(FB_WINDOWS * FB_ENTRIES);
        let mut base = Point::generator();
        for _ in 0..FB_WINDOWS {
            let mut cur = base;
            for _ in 0..FB_ENTRIES {
                jac.push(cur);
                cur = cur.add(&base);
            }
            base = cur; // 16·(previous base)
        }
        batch_to_affine(&jac)
    })
}

/// Normalize many Jacobian points with one field inversion (Montgomery's
/// trick). All inputs must be finite.
fn batch_to_affine(points: &[Point]) -> Vec<Affine> {
    let mut prefix = Vec::with_capacity(points.len());
    let mut acc = ONE;
    for p in points {
        prefix.push(acc);
        acc = fmul(&acc, &p.z);
    }
    let mut inv = finv(&acc);
    let mut out = vec![Affine { x: ZERO, y: ZERO }; points.len()];
    for i in (0..points.len()).rev() {
        let zinv = fmul(&inv, &prefix[i]);
        inv = fmul(&inv, &points[i].z);
        let zinv2 = fsqr(&zinv);
        out[i] = Affine {
            x: fmul(&points[i].x, &zinv2),
            y: fmul(&points[i].y, &fmul(&zinv2, &zinv)),
        };
    }
    out
}

/// `k·G` via the fixed-base window table: ≤ 64 mixed additions, no
/// doublings.
pub fn mul_g(k: &U256L) -> Point {
    let table = fb_table();
    let mut acc = Point::INFINITY;
    for w in 0..FB_WINDOWS {
        let digit = ((k[w / 16] >> ((w % 16) * 4)) & 0xF) as usize;
        if digit != 0 {
            acc = acc.add_affine(&table[w * FB_ENTRIES + digit - 1]);
        }
    }
    acc
}

impl Affine {
    /// Whether `y² = x³ + 7` holds.
    pub fn is_on_curve(&self) -> bool {
        let y2 = fsqr(&self.y);
        let x3 = fmul(&fsqr(&self.x), &self.x);
        y2 == fadd(&x3, &SEVEN)
    }

    /// Lift an x-coordinate to a point with the given y-parity; `None` when
    /// x³ + 7 is a non-residue.
    pub fn lift_x(x: &U256L, y_is_odd: bool) -> Option<Affine> {
        if cmp(x, &P) != std::cmp::Ordering::Less {
            return None;
        }
        let rhs = fadd(&fmul(&fsqr(x), x), &SEVEN);
        let y = fsqrt(&rhs);
        if fsqr(&y) != rhs {
            return None;
        }
        let y = if (y[0] & 1 == 1) == y_is_odd {
            y
        } else {
            sub_mod(&ZERO, &y, &P)
        };
        Some(Affine { x: *x, y })
    }

    /// The uncompressed 64-byte SEC1 body (`x ‖ y`, no 0x04 tag).
    pub fn to_bytes64(&self) -> [u8; 64] {
        let mut out = [0u8; 64];
        out[..32].copy_from_slice(&to_be_bytes(&self.x));
        out[32..].copy_from_slice(&to_be_bytes(&self.y));
        out
    }
}

// ---- ECDSA ----

/// Derive the public key for a secret scalar (must be in `[1, n)`).
pub fn pubkey(secret: &U256L) -> Affine {
    mul_g(secret)
        .to_affine()
        .expect("secret in [1, n) never lands on infinity")
}

/// Whether `s` is a valid secret scalar (`1 ≤ s < n`).
pub fn scalar_is_valid(s: &U256L) -> bool {
    !is_zero(s) && cmp(s, &N) == std::cmp::Ordering::Less
}

fn nmul(a: &U256L, b: &U256L) -> U256L {
    mul_mod(a, b, &N, &C_N)
}

/// One recoverable ECDSA signature: `(r, s)` scalars plus the y-parity of
/// the nonce point (after low-s normalization).
pub struct RawSignature {
    /// `r = (k·G).x mod n`.
    pub r: U256L,
    /// `s = k⁻¹(z + r·d) mod n`, low-s normalized.
    pub s: U256L,
    /// Recovery bit: y-parity of `k·G`.
    pub y_odd: bool,
}

/// Sign digest `z` with secret `d`, deriving the nonce deterministically via
/// `nonce(d, z, counter)` until a valid `(k, r, s)` triple appears.
///
/// Deviation from the seed's `k256` backend: the deterministic nonce is a
/// keccak-based stretch rather than RFC 6979's HMAC-SHA256 construction.
/// Signatures remain deterministic and verifiable, but their exact `(r, s)`
/// bytes differ from what an RFC 6979 signer would emit.
pub fn sign(z: &U256L, d: &U256L, mut nonce: impl FnMut(u32) -> [u8; 32]) -> RawSignature {
    for counter in 0u32.. {
        let k = reduce_bytes(&nonce(counter), &N);
        if is_zero(&k) {
            continue;
        }
        let rp = match mul_g(&k).to_affine() {
            Some(p) => p,
            None => continue,
        };
        // Skip the (astronomically rare) r.x ≥ n case rather than encoding
        // recovery-id bit 1; keeps `v` in Ethereum's {27, 28}.
        if cmp(&rp.x, &N) != std::cmp::Ordering::Less {
            continue;
        }
        let r = rp.x;
        if is_zero(&r) {
            continue;
        }
        let kinv = inv_mod(&k, &N, &C_N);
        let s = nmul(&kinv, &add_mod(z, &nmul(&r, d), &N));
        if is_zero(&s) {
            continue;
        }
        // Low-s normalization; flipping s mirrors the nonce point.
        let mut y_odd = rp.y[0] & 1 == 1;
        let mut s = s;
        if cmp(&s, &n_half()) == std::cmp::Ordering::Greater {
            s = sub_mod(&ZERO, &s, &N);
            y_odd = !y_odd;
        }
        return RawSignature { r, s, y_odd };
    }
    unreachable!("nonce search always terminates")
}

fn n_half() -> U256L {
    // n >> 1
    let mut out = ZERO;
    let mut carry = 0u64;
    for i in (0..4).rev() {
        out[i] = (N[i] >> 1) | (carry << 63);
        carry = N[i] & 1;
    }
    out
}

/// Recover the public key from a digest and a recoverable signature.
pub fn recover(z: &U256L, r: &U256L, s: &U256L, y_odd: bool) -> Option<Affine> {
    if is_zero(r) || is_zero(s) {
        return None;
    }
    if cmp(r, &N) != std::cmp::Ordering::Less || cmp(s, &N) != std::cmp::Ordering::Less {
        return None;
    }
    let rp = Affine::lift_x(r, y_odd)?;
    let rinv = inv_mod(r, &N, &C_N);
    let u1 = nmul(&sub_mod(&ZERO, z, &N), &rinv);
    let u2 = nmul(s, &rinv);
    let q = mul_g(&u1).add(&Point::from_affine(&rp).mul(&u2));
    q.to_affine()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_on_curve() {
        let g = Affine { x: GX, y: GY };
        assert!(g.is_on_curve());
    }

    #[test]
    fn generator_has_order_n() {
        assert!(Point::generator().mul(&N).is_infinity());
    }

    #[test]
    fn small_multiples_match_known_vectors() {
        // 2G.x from the standard secp256k1 tables.
        let two_g = Point::generator().double().to_affine().unwrap();
        assert_eq!(
            to_be_bytes(&two_g.x),
            *<&[u8; 32]>::try_from(
                hex::decode("c6047f9441ed7d6d3045406e95c07cd85c778e4b8cef3ca7abac09b95c709ee5")
                    .unwrap()
                    .as_slice()
            )
            .unwrap()
        );
        // G + 2G == 3G == G·3.
        let three_g = Point::generator().add(&Point::generator().double());
        let three_g2 = Point::generator().mul(&[3, 0, 0, 0]);
        assert_eq!(three_g.to_affine(), three_g2.to_affine());
    }

    #[test]
    fn fixed_base_mul_matches_generic_ladder() {
        let n_minus_1 = sub_raw(&N, &ONE).0;
        for scalar in [
            ONE,
            [0xF, 0, 0, 0],
            [0xDEAD_BEEF_0BAD_CAFE, 0x1234, 0, 1],
            [u64::MAX, u64::MAX, u64::MAX, 0x7FFF_FFFF_FFFF_FFFF],
            n_minus_1,
        ] {
            assert_eq!(
                mul_g(&scalar).to_affine(),
                Point::generator().mul(&scalar).to_affine(),
                "scalar {scalar:x?}"
            );
        }
        assert!(mul_g(&N).is_infinity());
        assert!(mul_g(&ZERO).is_infinity());
    }

    #[test]
    fn wnaf_digits_reconstruct_the_scalar() {
        for scalar in [
            ONE,
            [31, 0, 0, 0],
            [0xFFFF_FFFF_FFFF_FFFF, 0, 0, 0],
            [0xDEAD_BEEF_0BAD_CAFE, 0x1234, 0xFFFF_0000_FFFF_0000, 1],
            [u64::MAX; 4],
            N,
        ] {
            let (digits, len) = wnaf5(&scalar);
            assert!(len <= 257);
            // Non-zero digits are odd, |d| ≤ 15, and ≥ 5 apart.
            let mut last_nonzero: Option<usize> = None;
            for (i, &d) in digits[..len].iter().enumerate() {
                if d == 0 {
                    continue;
                }
                assert!(d % 2 != 0 && d.abs() <= 15, "digit {d} at {i}");
                if let Some(prev) = last_nonzero {
                    assert!(i - prev >= 5, "digits at {prev} and {i} too close");
                }
                last_nonzero = Some(i);
            }
            // Σ dᵢ·2ⁱ == scalar (evaluated in 320-bit arithmetic).
            let mut acc = [0u64; 5];
            for (i, &d) in digits[..len].iter().enumerate().rev() {
                // acc = acc*2 + d
                let mut carry = 0u64;
                for limb in acc.iter_mut() {
                    let high = *limb >> 63;
                    *limb = (*limb << 1) | carry;
                    carry = high;
                }
                let _ = i;
                if d >= 0 {
                    add_small(&mut acc, d as u64);
                } else {
                    sub_small(&mut acc, (-d) as u64);
                }
            }
            assert_eq!(&acc[..4], &scalar[..], "reconstruction mismatch");
            assert_eq!(acc[4], 0);
        }
    }

    #[test]
    fn wnaf_mul_matches_binary_ladder() {
        let bases = [
            Point::generator(),
            Point::generator().double(),
            Point::generator().mul_binary(&[0xABCD, 7, 0, 0]),
        ];
        let n_minus_1 = sub_raw(&N, &ONE).0;
        for base in bases {
            for scalar in [
                ONE,
                [2, 0, 0, 0],
                [15, 0, 0, 0],
                [16, 0, 0, 0],
                [17, 0, 0, 0],
                [0xDEAD_BEEF_0BAD_CAFE, 0x1234, 0, 1],
                [u64::MAX, u64::MAX, u64::MAX, 0x7FFF_FFFF_FFFF_FFFF],
                n_minus_1,
            ] {
                assert_eq!(
                    base.mul(&scalar).to_affine(),
                    base.mul_binary(&scalar).to_affine(),
                    "scalar {scalar:x?}"
                );
            }
            assert!(base.mul(&N).is_infinity());
            assert!(base.mul(&ZERO).is_infinity());
        }
        assert!(Point::INFINITY.mul(&[5, 0, 0, 0]).is_infinity());
    }

    #[test]
    fn field_inverse_round_trips() {
        let a = [0x1234_5678, 42, 7, 9];
        assert_eq!(fmul(&a, &finv(&a)), ONE);
        let b = [99, 0, 0, 0];
        assert_eq!(nmul(&b, &inv_mod(&b, &N, &C_N)), ONE);
    }

    #[test]
    fn sqrt_round_trips() {
        let a = [1234, 5, 6, 7];
        let sq = fsqr(&a);
        let root = fsqrt(&sq);
        assert!(root == a || root == sub_mod(&ZERO, &a, &P));
    }

    #[test]
    fn sign_recover_round_trip() {
        let d = [0xDEAD_BEEF, 1, 2, 3];
        let z = [77, 88, 99, 11];
        let sig = sign(&z, &d, |ctr| {
            let mut seed = to_be_bytes(&z);
            seed[0] ^= ctr as u8;
            seed[1] |= 1;
            seed
        });
        let q = recover(&z, &sig.r, &sig.s, sig.y_odd).unwrap();
        assert_eq!(q, pubkey(&d));
    }
}
