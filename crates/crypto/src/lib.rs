//! Ethereum-compatible cryptography for SMACS.
//!
//! The paper (§VI) uses "the Ethereum's ECDSA signature scheme as the default
//! one, as Ethereum provides a native and optimized support for it". This
//! crate provides exactly that stack:
//!
//! - [`keccak256`] — the hash Ethereum uses everywhere (addresses, method
//!   selectors, transaction ids, signing digests);
//! - [`Keypair`] — a secp256k1 private/public key pair with the standard
//!   Ethereum address derivation (last 20 bytes of `keccak256(pubkey)`);
//! - [`Signature`] — the 65-byte `(r ‖ s ‖ v)` recoverable signature layout
//!   the paper's 86-byte token embeds (Fig. 3);
//! - [`recover_address`] — the `ecrecover` primitive contracts use for
//!   signature verification (Alg. 1's `SigVerify`).

pub mod ecdsa;
pub mod keccak;
pub mod secp256k1;

pub use ecdsa::{recover_address, Keypair, PublicKey, Signature, SignatureError};
pub use keccak::{keccak256, keccak256_concat, Keccak256};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_sign_recover() {
        let kp = Keypair::from_seed(7);
        let digest = keccak256(b"smacs end to end");
        let sig = kp.sign_digest(&digest);
        assert_eq!(recover_address(&digest, &sig), Some(kp.address()));
    }
}
