//! secp256k1 ECDSA with public-key recovery, Ethereum style.
//!
//! Signatures are the 65-byte `(r ‖ s ‖ v)` layout with the recovery id `v`
//! in the trailing byte (encoded as 27/28 as Ethereum's `ecrecover` expects).
//! Addresses are the last 20 bytes of `keccak256(uncompressed_pubkey[1..])`.
//!
//! The curve math lives in [`crate::secp256k1`], written from scratch since
//! the build environment has no external crates. Nonces are derived by a
//! deterministic keccak stretch over `(secret ‖ digest)` rather than
//! RFC 6979's HMAC-SHA256 (same determinism property, different bytes).

use smacs_primitives::{Address, H256};
use std::fmt;

use crate::keccak256;
use crate::secp256k1 as curve;

/// A secp256k1 public key (uncompressed SEC1 form, 64 bytes sans the 0x04
/// tag).
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct PublicKey(pub [u8; 64]);

impl PublicKey {
    /// The Ethereum address for this key: the last 20 bytes of
    /// `keccak256(pubkey)`.
    pub fn address(&self) -> Address {
        let hash = keccak256(&self.0);
        Address::from_slice(&hash.0[12..]).expect("20-byte suffix of a 32-byte hash")
    }

    fn from_affine(point: &curve::Affine) -> Self {
        PublicKey(point.to_bytes64())
    }
}

impl fmt::Debug for PublicKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PublicKey({})", self.address())
    }
}

/// A 65-byte recoverable ECDSA signature: `r` (32) ‖ `s` (32) ‖ `v` (1).
///
/// This is the `signature` field of the paper's 86-byte token (Fig. 3).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Signature {
    /// The 32-byte `r` component.
    pub r: [u8; 32],
    /// The 32-byte `s` component (low-s normalized).
    pub s: [u8; 32],
    /// The recovery id, Ethereum-encoded as 27 or 28.
    pub v: u8,
}

/// Errors produced when parsing or recovering signatures.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SignatureError {
    /// Wire image was not exactly 65 bytes.
    BadLength,
    /// The `v` byte was not 27 or 28.
    BadRecoveryId,
    /// The `(r, s)` pair is not a valid curve signature.
    Malformed,
}

impl fmt::Display for SignatureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SignatureError::BadLength => write!(f, "signature must be exactly 65 bytes"),
            SignatureError::BadRecoveryId => write!(f, "recovery id must be 27 or 28"),
            SignatureError::Malformed => write!(f, "malformed (r, s) signature components"),
        }
    }
}

impl std::error::Error for SignatureError {}

impl Signature {
    /// Total wire size: 65 bytes, as in the paper's Fig. 3.
    pub const SIZE: usize = 65;

    /// Serialize to the 65-byte `(r ‖ s ‖ v)` wire image.
    pub fn to_bytes(&self) -> [u8; 65] {
        let mut out = [0u8; 65];
        out[..32].copy_from_slice(&self.r);
        out[32..64].copy_from_slice(&self.s);
        out[64] = self.v;
        out
    }

    /// Parse from the 65-byte wire image.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SignatureError> {
        if bytes.len() != Self::SIZE {
            return Err(SignatureError::BadLength);
        }
        let v = bytes[64];
        if v != 27 && v != 28 {
            return Err(SignatureError::BadRecoveryId);
        }
        let mut r = [0u8; 32];
        let mut s = [0u8; 32];
        r.copy_from_slice(&bytes[..32]);
        s.copy_from_slice(&bytes[32..64]);
        Ok(Signature { r, s, v })
    }
}

impl fmt::Debug for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Signature(r=0x{}, s=0x{}, v={})",
            hex::encode(&self.r[..4]),
            hex::encode(&self.s[..4]),
            self.v
        )
    }
}

/// A secp256k1 keypair. The TS holds one of these as `(pk_TS, sk_TS)`; every
/// externally owned account holds one for transaction signing.
#[derive(Clone)]
pub struct Keypair {
    secret: curve::U256L,
    public: PublicKey,
}

impl Keypair {
    /// Generate a fresh keypair from process-local entropy (address of a
    /// heap allocation, monotonic time, and a counter, stretched through
    /// keccak). Not for production key material — like everything in this
    /// simulator.
    pub fn random() -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let unique = Box::new(0u8);
        let mut seed = [0u8; 32];
        seed[..8].copy_from_slice(&(&*unique as *const u8 as usize as u64).to_be_bytes());
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        seed[8..16].copy_from_slice(&nanos.to_be_bytes());
        seed[16..24].copy_from_slice(&COUNTER.fetch_add(1, Ordering::Relaxed).to_be_bytes());
        let mut candidate = keccak256(&seed).0;
        loop {
            if let Some(kp) = Self::from_secret_bytes(&candidate) {
                return kp;
            }
            candidate = keccak256(&candidate).0;
        }
    }

    /// Deterministic keypair from a seed — for tests and reproducible
    /// experiments. Not for production key material.
    pub fn from_seed(seed: u64) -> Self {
        // Stretch the seed through keccak until it lands in the field.
        let mut candidate = keccak256(&seed.to_be_bytes()).0;
        loop {
            if let Some(kp) = Self::from_secret_bytes(&candidate) {
                return kp;
            }
            candidate = keccak256(&candidate).0;
        }
    }

    /// Construct from raw 32-byte private scalar.
    pub fn from_secret_bytes(bytes: &[u8; 32]) -> Option<Self> {
        let secret = curve::from_be_bytes(bytes);
        if !curve::scalar_is_valid(&secret) {
            return None;
        }
        let public = PublicKey::from_affine(&curve::pubkey(&secret));
        Some(Keypair { secret, public })
    }

    /// The raw 32-byte private scalar — needed by persistence layers.
    /// Handle with the care private key material deserves.
    pub fn secret_bytes(&self) -> [u8; 32] {
        curve::to_be_bytes(&self.secret)
    }

    /// The public half.
    pub fn public(&self) -> PublicKey {
        self.public
    }

    /// The Ethereum address controlled by this keypair.
    pub fn address(&self) -> Address {
        self.public.address()
    }

    /// Sign a 32-byte digest, producing a recoverable 65-byte signature.
    ///
    /// Deterministic: the nonce is a keccak stretch over
    /// `(secret ‖ digest ‖ counter)`, so equal inputs yield equal
    /// signatures.
    pub fn sign_digest(&self, digest: &H256) -> Signature {
        let z = curve::reduce_bytes(&digest.0, &curve::N);
        let secret_bytes = self.secret_bytes();
        let sig = curve::sign(&z, &self.secret, |counter| {
            crate::keccak256_concat(&[&secret_bytes, &digest.0, &counter.to_be_bytes()]).0
        });
        Signature {
            r: curve::to_be_bytes(&sig.r),
            s: curve::to_be_bytes(&sig.s),
            v: 27 + sig.y_odd as u8,
        }
    }

    /// Sign an arbitrary message by hashing it with keccak256 first.
    pub fn sign_message(&self, message: &[u8]) -> Signature {
        self.sign_digest(&keccak256(message))
    }
}

impl fmt::Debug for Keypair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Keypair({})", self.address())
    }
}

/// `ecrecover`: recover the signer's address from a digest and a recoverable
/// signature. Returns `None` for invalid signatures — the caller treats that
/// as a failed verification, exactly like Solidity's `ecrecover` returning
/// the zero address.
pub fn recover_address(digest: &H256, signature: &Signature) -> Option<Address> {
    if signature.v != 27 && signature.v != 28 {
        return None;
    }
    let z = curve::reduce_bytes(&digest.0, &curve::N);
    let r = curve::from_be_bytes(&signature.r);
    let s = curve::from_be_bytes(&signature.s);
    let point = curve::recover(&z, &r, &s, signature.v == 28)?;
    Some(PublicKey::from_affine(&point).address())
}

/// Verify that `signature` over `digest` was produced by the holder of
/// `expected` — the contract-side `SigVerify_pk(·)` of Alg. 1.
pub fn verify_with_address(digest: &H256, signature: &Signature, expected: Address) -> bool {
    recover_address(digest, signature) == Some(expected)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn sign_and_recover() {
        let kp = Keypair::from_seed(1);
        let digest = keccak256(b"message");
        let sig = kp.sign_digest(&digest);
        assert_eq!(recover_address(&digest, &sig), Some(kp.address()));
        assert!(verify_with_address(&digest, &sig, kp.address()));
    }

    #[test]
    fn wrong_digest_recovers_different_address() {
        let kp = Keypair::from_seed(2);
        let sig = kp.sign_message(b"original");
        let tampered = keccak256(b"tampered");
        assert_ne!(recover_address(&tampered, &sig), Some(kp.address()));
    }

    #[test]
    fn tampered_signature_fails() {
        let kp = Keypair::from_seed(3);
        let digest = keccak256(b"msg");
        let mut sig = kp.sign_digest(&digest);
        sig.r[0] ^= 0x01;
        assert_ne!(recover_address(&digest, &sig), Some(kp.address()));
    }

    #[test]
    fn wire_round_trip() {
        let kp = Keypair::from_seed(4);
        let sig = kp.sign_message(b"wire");
        let bytes = sig.to_bytes();
        assert_eq!(bytes.len(), Signature::SIZE);
        assert_eq!(Signature::from_bytes(&bytes), Ok(sig));
    }

    #[test]
    fn wire_rejects_bad_input() {
        assert_eq!(
            Signature::from_bytes(&[0u8; 64]),
            Err(SignatureError::BadLength)
        );
        let mut bytes = [0u8; 65];
        bytes[64] = 5;
        assert_eq!(
            Signature::from_bytes(&bytes),
            Err(SignatureError::BadRecoveryId)
        );
    }

    #[test]
    fn deterministic_seeding() {
        assert_eq!(
            Keypair::from_seed(9).address(),
            Keypair::from_seed(9).address()
        );
        assert_ne!(
            Keypair::from_seed(9).address(),
            Keypair::from_seed(10).address()
        );
    }

    #[test]
    fn deterministic_signatures() {
        let kp = Keypair::from_seed(11);
        let d = keccak256(b"rfc6979");
        assert_eq!(kp.sign_digest(&d), kp.sign_digest(&d));
    }

    #[test]
    fn random_keypairs_differ() {
        let a = Keypair::random();
        let b = Keypair::random();
        assert_ne!(a.address(), b.address());
    }

    #[test]
    fn known_address_vector() {
        // Private key 0x...01 corresponds to a well-known address:
        // 0x7e5f4552091a69125d5dfcb7b8c2659029395bdf
        let mut sk = [0u8; 32];
        sk[31] = 1;
        let kp = Keypair::from_secret_bytes(&sk).unwrap();
        assert_eq!(
            kp.address().to_hex(),
            "0x7e5f4552091a69125d5dfcb7b8c2659029395bdf"
        );
    }

    #[test]
    fn zero_secret_rejected() {
        assert!(Keypair::from_secret_bytes(&[0u8; 32]).is_none());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn prop_sign_recover(seed in 1u64..1_000_000, msg in prop::collection::vec(any::<u8>(), 0..128)) {
            let kp = Keypair::from_seed(seed);
            let digest = keccak256(&msg);
            let sig = kp.sign_digest(&digest);
            prop_assert_eq!(recover_address(&digest, &sig), Some(kp.address()));
        }

        #[test]
        fn prop_signature_binds_message(seed in 1u64..1_000_000, a in any::<[u8; 16]>(), b in any::<[u8; 16]>()) {
            prop_assume!(a != b);
            let kp = Keypair::from_seed(seed);
            let sig = kp.sign_message(&a);
            prop_assert!(!verify_with_address(&keccak256(&b), &sig, kp.address()));
        }
    }
}
