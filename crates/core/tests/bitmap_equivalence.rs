//! Equivalence of the two Alg. 2 implementations: the pure state machine
//! ([`smacs_core::bitmap::BitmapState`]) and the gas-charged storage-backed
//! version ([`smacs_core::storage_bitmap::StorageBitmap`]) must produce the
//! same verdict for every index sequence.

use proptest::prelude::*;
use smacs_chain::abi::{self, AbiType};
use smacs_chain::{CallContext, Chain, Contract, VmError};
use smacs_core::bitmap::{BitmapState, BitmapVerdict};
use smacs_core::storage_bitmap::StorageBitmap;
use smacs_primitives::{Bytes, U256};
use std::sync::Arc;

/// A contract exposing the storage bitmap directly:
/// `tryUse(uint256) → uint256` (0 = accepted, 1 = stale, 2 = used).
struct BitmapProbe {
    n_bits: u64,
}

impl Contract for BitmapProbe {
    fn name(&self) -> &'static str {
        "BitmapProbe"
    }

    fn constructor(&self, ctx: &mut CallContext<'_, '_>) -> Result<(), VmError> {
        StorageBitmap::init(ctx, self.n_bits)
    }

    fn execute(&self, ctx: &mut CallContext<'_, '_>) -> Result<Bytes, VmError> {
        let sel = ctx.msg_sig().unwrap();
        if sel == abi::selector("tryUse(uint256)") {
            let args = ctx.decode_args(&[AbiType::Uint])?;
            let index = args[0].as_uint().unwrap().low_u128();
            let verdict = StorageBitmap::try_use(ctx, index)?;
            let code = match verdict {
                BitmapVerdict::Accepted => 0u64,
                BitmapVerdict::RejectedStale => 1,
                BitmapVerdict::RejectedUsed => 2,
            };
            Ok(Bytes::from(U256::from_u64(code).to_be_bytes()))
        } else {
            ctx.revert("unknown")
        }
    }
}

fn drive_storage(n_bits: u64, indexes: &[u128]) -> Vec<u64> {
    let mut chain = Chain::default_chain();
    let owner = chain.funded_keypair(1, 10u128.pow(24));
    let (probe, receipt) = chain
        .deploy(&owner, Arc::new(BitmapProbe { n_bits }))
        .unwrap();
    assert!(receipt.status.is_success());
    indexes
        .iter()
        .map(|&i| {
            let call = abi::encode_call(
                "tryUse(uint256)",
                &[smacs_chain::AbiValue::Uint(U256::from_u128(i))],
            );
            let receipt = chain.call_contract(&owner, probe.address, 0, call).unwrap();
            assert!(receipt.status.is_success(), "{:?}", receipt.status);
            U256::from_be_slice(&receipt.return_data).unwrap().low_u64()
        })
        .collect()
}

fn drive_pure(n_bits: u64, indexes: &[u128]) -> Vec<u64> {
    let mut bm = BitmapState::new(n_bits as usize);
    indexes
        .iter()
        .map(|&i| match bm.try_use(i) {
            BitmapVerdict::Accepted => 0,
            BitmapVerdict::RejectedStale => 1,
            BitmapVerdict::RejectedUsed => 2,
        })
        .collect()
}

#[test]
fn worked_example_agrees() {
    let indexes = [0u128, 1, 4, 5, 9, 13, 2, 3, 13, 100, 100, 101];
    assert_eq!(drive_pure(8, &indexes), drive_storage(8, &indexes));
}

#[test]
fn word_boundary_indexes_agree() {
    // Indexes straddling 256-bit word boundaries exercise the storage
    // version's word addressing.
    let indexes = [0u128, 255, 256, 257, 511, 512, 300, 255, 256];
    assert_eq!(drive_pure(600, &indexes), drive_storage(600, &indexes));
}

#[test]
fn reset_epoch_agrees() {
    // A jump beyond end + n triggers the storage version's epoch bump and
    // the pure version's clear — both must report identical verdicts after.
    let indexes = [0u128, 1, 5000, 5001, 0, 1, 5000, 4999, 5007];
    assert_eq!(drive_pure(8, &indexes), drive_storage(8, &indexes));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn prop_storage_matches_pure(
        n_exp in 0u32..3,
        indexes in prop::collection::vec(0u128..2_000, 1..40),
    ) {
        // Sizes 8, 64, 512 cover sub-word, word, and multi-word bitmaps.
        let n_bits = 8u64 << (3 * n_exp);
        prop_assert_eq!(
            drive_pure(n_bits, &indexes),
            drive_storage(n_bits, &indexes),
            "n_bits = {}", n_bits
        );
    }
}
