//! End-to-end SMACS verification: owner deploys a shielded contract, a
//! hand-rolled TS signs tokens, clients present them. Covers the §VII-A
//! security arguments: substitution attacks, replay, expiry, one-time
//! semantics, wrong-type/method/argument rejections, and privacy of rules.

use smacs_chain::abi::{self, AbiType, AbiValue};
use smacs_chain::{CallContext, Chain, Contract, ExecStatus, VmError};
use smacs_core::client::ClientWallet;
use smacs_core::owner::{OwnerToolkit, ShieldParams};
use smacs_crypto::Keypair;
use smacs_primitives::{Address, Bytes, H256, U256};
use smacs_token::{signing_digest, PayloadContext, Token, TokenType, NO_INDEX};
use std::sync::Arc;

/// The protected application: a vault with a counter and a parameterized
/// setter, enough surface to exercise all three token types.
struct Vault;

impl Contract for Vault {
    fn name(&self) -> &'static str {
        "Vault"
    }
    fn execute(&self, ctx: &mut CallContext<'_, '_>) -> Result<Bytes, VmError> {
        let sel = ctx.msg_sig().unwrap();
        if sel == abi::selector("bump()") {
            let v = ctx.sload_u256(H256::ZERO)?;
            ctx.sstore_u256(H256::ZERO, v.wrapping_add(U256::ONE))?;
            Ok(Bytes::new())
        } else if sel == abi::selector("set(uint256)") {
            let args = ctx.decode_args(&[AbiType::Uint])?;
            ctx.sstore_u256(H256::ZERO, args[0].as_uint().unwrap())?;
            Ok(Bytes::new())
        } else if sel == abi::selector("get()") {
            Ok(Bytes::from(ctx.sload_u256(H256::ZERO)?.to_be_bytes()))
        } else {
            ctx.revert("unknown method")
        }
    }
}

struct Setup {
    chain: Chain,
    toolkit: OwnerToolkit,
    client: ClientWallet,
    vault: Address,
}

fn setup() -> Setup {
    let mut chain = Chain::default_chain();
    let owner = chain.funded_keypair(1, 10u128.pow(24));
    let client_kp = chain.funded_keypair(2, 10u128.pow(24));
    let toolkit = OwnerToolkit::new(owner, Keypair::from_seed(1000));
    let (vault, receipt) = toolkit
        .deploy_shielded(
            &mut chain,
            Arc::new(Vault),
            &ShieldParams {
                token_lifetime_secs: 3600,
                max_tx_per_second: 0.35, // small bitmap: fast tests
                disable_one_time: false,
            },
        )
        .unwrap();
    assert!(receipt.status.is_success());
    Setup {
        chain,
        toolkit,
        client: ClientWallet::new(client_kp),
        vault: vault.address,
    }
}

/// Hand-rolled TS issuance: sign exactly what Alg. 1 will reconstruct.
fn issue(
    toolkit: &OwnerToolkit,
    ttype: TokenType,
    expire: u32,
    index: i128,
    ctx: &PayloadContext,
) -> Token {
    let digest = signing_digest(ttype, expire, index, ctx);
    Token {
        ttype,
        expire,
        index,
        signature: toolkit.ts_keypair().sign_digest(&digest),
    }
}

fn far_future(chain: &Chain) -> u32 {
    (chain.pending_env().timestamp + 3_000) as u32
}

fn super_ctx(s: &Setup) -> PayloadContext {
    PayloadContext {
        sender: s.client.address(),
        contract: s.vault,
        selector: None,
        calldata: None,
    }
}

#[test]
fn super_token_grants_any_method() {
    let mut s = setup();
    let tk = issue(
        &s.toolkit,
        TokenType::Super,
        far_future(&s.chain),
        NO_INDEX,
        &super_ctx(&s),
    );
    for payload in [
        abi::encode_call("bump()", &[]),
        abi::encode_call("set(uint256)", &[AbiValue::Uint(U256::from_u64(9))]),
        abi::encode_call("get()", &[]),
    ] {
        let receipt = s
            .client
            .call_with_token(&mut s.chain, s.vault, 0, &payload, tk)
            .unwrap();
        assert!(receipt.status.is_success(), "{:?}", receipt.status);
    }
    assert_eq!(
        s.chain.state().storage_get_u256(s.vault, H256::ZERO),
        U256::from_u64(9)
    );
}

#[test]
fn missing_token_is_rejected() {
    let mut s = setup();
    // Raw call with no token array at all.
    let receipt = s
        .client
        .send(&mut s.chain, s.vault, 0, abi::encode_call("bump()", &[]))
        .unwrap();
    match &receipt.status {
        ExecStatus::Reverted(reason) => assert!(reason.contains("SMACS"), "{reason}"),
        other => panic!("expected revert, got {other:?}"),
    }
    assert_eq!(
        s.chain.state().storage_get_u256(s.vault, H256::ZERO),
        U256::ZERO
    );
}

#[test]
fn expired_token_is_rejected() {
    let mut s = setup();
    let expire = (s.chain.pending_env().timestamp + 100) as u32;
    let tk = issue(
        &s.toolkit,
        TokenType::Super,
        expire,
        NO_INDEX,
        &super_ctx(&s),
    );
    // Valid now …
    let r = s
        .client
        .call_with_token(
            &mut s.chain,
            s.vault,
            0,
            &abi::encode_call("bump()", &[]),
            tk,
        )
        .unwrap();
    assert!(r.status.is_success());
    // … expired after time passes.
    s.chain.advance_time(200);
    let r = s
        .client
        .call_with_token(
            &mut s.chain,
            s.vault,
            0,
            &abi::encode_call("bump()", &[]),
            tk,
        )
        .unwrap();
    assert_eq!(r.revert_reason(), Some("SMACS: token expired"));
}

#[test]
fn substitution_attack_fails() {
    // §VII-A(a): an attacker intercepts a token and tries to use it from
    // their own account. tx.origin differs ⇒ signature verification fails.
    let mut s = setup();
    let tk = issue(
        &s.toolkit,
        TokenType::Super,
        far_future(&s.chain),
        NO_INDEX,
        &super_ctx(&s),
    );
    let attacker = ClientWallet::new(s.chain.funded_keypair(666, 10u128.pow(24)));
    let r = attacker
        .call_with_token(
            &mut s.chain,
            s.vault,
            0,
            &abi::encode_call("bump()", &[]),
            tk,
        )
        .unwrap();
    assert_eq!(r.revert_reason(), Some("SMACS: invalid token signature"));
    // The legitimate holder can still use it.
    let r = s
        .client
        .call_with_token(
            &mut s.chain,
            s.vault,
            0,
            &abi::encode_call("bump()", &[]),
            tk,
        )
        .unwrap();
    assert!(r.status.is_success());
}

#[test]
fn method_token_binds_the_method() {
    let mut s = setup();
    let ctx = PayloadContext {
        selector: Some(abi::selector("bump()")),
        ..super_ctx(&s)
    };
    let tk = issue(
        &s.toolkit,
        TokenType::Method,
        far_future(&s.chain),
        NO_INDEX,
        &ctx,
    );
    // Works for bump() with any state of arguments …
    let r = s
        .client
        .call_with_token(
            &mut s.chain,
            s.vault,
            0,
            &abi::encode_call("bump()", &[]),
            tk,
        )
        .unwrap();
    assert!(r.status.is_success());
    // … but not for set(uint256).
    let r = s
        .client
        .call_with_token(
            &mut s.chain,
            s.vault,
            0,
            &abi::encode_call("set(uint256)", &[AbiValue::Uint(U256::ONE)]),
            tk,
        )
        .unwrap();
    assert_eq!(r.revert_reason(), Some("SMACS: invalid token signature"));
}

#[test]
fn argument_token_binds_exact_arguments() {
    let mut s = setup();
    let good_payload = abi::encode_call("set(uint256)", &[AbiValue::Uint(U256::from_u64(42))]);
    let ctx = PayloadContext {
        selector: Some(abi::selector("set(uint256)")),
        calldata: Some(good_payload.clone()),
        ..super_ctx(&s)
    };
    let tk = issue(
        &s.toolkit,
        TokenType::Argument,
        far_future(&s.chain),
        NO_INDEX,
        &ctx,
    );

    // Exact payload: accepted.
    let r = s
        .client
        .call_with_token(&mut s.chain, s.vault, 0, &good_payload, tk)
        .unwrap();
    assert!(r.status.is_success());
    assert_eq!(
        s.chain.state().storage_get_u256(s.vault, H256::ZERO),
        U256::from_u64(42)
    );

    // Same method, different argument: rejected.
    let bad_payload = abi::encode_call("set(uint256)", &[AbiValue::Uint(U256::from_u64(43))]);
    let r = s
        .client
        .call_with_token(&mut s.chain, s.vault, 0, &bad_payload, tk)
        .unwrap();
    assert_eq!(r.revert_reason(), Some("SMACS: invalid token signature"));
    assert_eq!(
        s.chain.state().storage_get_u256(s.vault, H256::ZERO),
        U256::from_u64(42)
    );
}

#[test]
fn forged_signature_rejected() {
    let mut s = setup();
    // Signed by the wrong key entirely.
    let mallory = OwnerToolkit::new(Keypair::from_seed(31337), Keypair::from_seed(31338));
    let tk = issue(
        &mallory,
        TokenType::Super,
        far_future(&s.chain),
        NO_INDEX,
        &super_ctx(&s),
    );
    let r = s
        .client
        .call_with_token(
            &mut s.chain,
            s.vault,
            0,
            &abi::encode_call("bump()", &[]),
            tk,
        )
        .unwrap();
    assert_eq!(r.revert_reason(), Some("SMACS: invalid token signature"));
}

#[test]
fn token_for_other_contract_rejected() {
    let mut s = setup();
    let other = Address::from_low_u64(0xDEAD);
    let ctx = PayloadContext {
        contract: other,
        ..super_ctx(&s)
    };
    let tk = issue(
        &s.toolkit,
        TokenType::Super,
        far_future(&s.chain),
        NO_INDEX,
        &ctx,
    );
    // Addressed to `other` in the array: the vault finds no token for
    // itself.
    let data = smacs_core::client::build_call_data(&abi::encode_call("bump()", &[]), other, tk);
    let r = s.client.send(&mut s.chain, s.vault, 0, data).unwrap();
    assert_eq!(r.revert_reason(), Some("SMACS: no token for this contract"));

    // Addressed to the vault in the array but signed for `other`: the
    // signature binds cAddr, so verification fails.
    let data = smacs_core::client::build_call_data(&abi::encode_call("bump()", &[]), s.vault, tk);
    let r = s.client.send(&mut s.chain, s.vault, 0, data).unwrap();
    assert_eq!(r.revert_reason(), Some("SMACS: invalid token signature"));
}

#[test]
fn one_time_token_single_use() {
    let mut s = setup();
    let tk = issue(
        &s.toolkit,
        TokenType::Super,
        far_future(&s.chain),
        0,
        &super_ctx(&s),
    );
    assert!(tk.is_one_time());
    let payload = abi::encode_call("bump()", &[]);
    let r = s
        .client
        .call_with_token(&mut s.chain, s.vault, 0, &payload, tk)
        .unwrap();
    assert!(r.status.is_success());
    // §VII-A(b): replaying the used one-time token in a fresh transaction
    // is denied by the bitmap.
    let r = s
        .client
        .call_with_token(&mut s.chain, s.vault, 0, &payload, tk)
        .unwrap();
    assert_eq!(
        r.revert_reason(),
        Some("SMACS: one-time token already used or missed")
    );
    assert_eq!(
        s.chain.state().storage_get_u256(s.vault, H256::ZERO),
        U256::ONE
    );
}

#[test]
fn one_time_tokens_consume_distinct_indexes() {
    let mut s = setup();
    let payload = abi::encode_call("bump()", &[]);
    for index in 0..5i128 {
        let tk = issue(
            &s.toolkit,
            TokenType::Super,
            far_future(&s.chain),
            index,
            &super_ctx(&s),
        );
        let r = s
            .client
            .call_with_token(&mut s.chain, s.vault, 0, &payload, tk)
            .unwrap();
        assert!(r.status.is_success(), "index {index}: {:?}", r.status);
    }
    assert_eq!(
        s.chain.state().storage_get_u256(s.vault, H256::ZERO),
        U256::from_u64(5)
    );
}

#[test]
fn failed_use_does_not_burn_the_index() {
    // The bitmap marks an index only after the signature verifies and the
    // inner body is about to run; a failed attempt by an attacker must not
    // invalidate the legitimate holder's token.
    let mut s = setup();
    let tk = issue(
        &s.toolkit,
        TokenType::Super,
        far_future(&s.chain),
        3,
        &super_ctx(&s),
    );
    let attacker = ClientWallet::new(s.chain.funded_keypair(667, 10u128.pow(24)));
    let payload = abi::encode_call("bump()", &[]);
    // Attacker steals the token; signature check fails (origin mismatch).
    let r = attacker
        .call_with_token(&mut s.chain, s.vault, 0, &payload, tk)
        .unwrap();
    assert_eq!(r.revert_reason(), Some("SMACS: invalid token signature"));
    // Legitimate holder still gets exactly one use.
    let r = s
        .client
        .call_with_token(&mut s.chain, s.vault, 0, &payload, tk)
        .unwrap();
    assert!(r.status.is_success());
}

#[test]
fn inner_revert_rolls_back_one_time_marking() {
    // If the method body reverts after verification, the whole transaction
    // (including the bitmap write) reverts: the token remains usable.
    let mut s = setup();
    let ctx = PayloadContext {
        selector: Some(abi::selector("nosuch()")),
        ..super_ctx(&s)
    };
    let tk = issue(&s.toolkit, TokenType::Method, far_future(&s.chain), 7, &ctx);
    let payload = abi::encode_call("nosuch()", &[]);
    let r = s
        .client
        .call_with_token(&mut s.chain, s.vault, 0, &payload, tk)
        .unwrap();
    assert_eq!(r.revert_reason(), Some("unknown method"));
    // Bitmap write was rolled back with everything else; a later valid use
    // of the same index (through a method that exists, with a fresh token
    // for it) succeeds.
    let ctx = PayloadContext {
        selector: Some(abi::selector("bump()")),
        ..super_ctx(&s)
    };
    let tk = issue(&s.toolkit, TokenType::Method, far_future(&s.chain), 7, &ctx);
    let r = s
        .client
        .call_with_token(
            &mut s.chain,
            s.vault,
            0,
            &abi::encode_call("bump()", &[]),
            tk,
        )
        .unwrap();
    assert!(r.status.is_success());
}

#[test]
fn gas_breakdown_has_verify_section() {
    let mut s = setup();
    let tk = issue(
        &s.toolkit,
        TokenType::Super,
        far_future(&s.chain),
        NO_INDEX,
        &super_ctx(&s),
    );
    let r = s
        .client
        .call_with_token(
            &mut s.chain,
            s.vault,
            0,
            &abi::encode_call("bump()", &[]),
            tk,
        )
        .unwrap();
    assert!(r.status.is_success());
    let verify = r.breakdown.section("verify");
    // Calibrated to the paper's magnitude: ~108k for a super token.
    assert!((100_000..120_000).contains(&verify), "verify gas {verify}");
    assert_eq!(r.breakdown.section("bitmap"), 0);
    assert!(r.breakdown.misc() > 21_000);
}

#[test]
fn one_time_gas_breakdown_has_bitmap_section() {
    let mut s = setup();
    let tk = issue(
        &s.toolkit,
        TokenType::Super,
        far_future(&s.chain),
        0,
        &super_ctx(&s),
    );
    let r = s
        .client
        .call_with_token(
            &mut s.chain,
            s.vault,
            0,
            &abi::encode_call("bump()", &[]),
            tk,
        )
        .unwrap();
    assert!(r.status.is_success());
    let bitmap = r.breakdown.section("bitmap");
    // The paper reports ~27.5–28k.
    assert!((24_000..32_000).contains(&bitmap), "bitmap gas {bitmap}");
}

#[test]
fn reorged_history_cannot_forge_tokens() {
    // §VII-A(c): a 51% adversary rewrites blocks, but a non-compliant
    // transaction still cannot carry a valid token afterwards.
    let mut s = setup();
    let tk = issue(
        &s.toolkit,
        TokenType::Super,
        far_future(&s.chain),
        NO_INDEX,
        &super_ctx(&s),
    );
    let payload = abi::encode_call("bump()", &[]);
    s.client
        .call_with_token(&mut s.chain, s.vault, 0, &payload, tk)
        .unwrap();
    s.chain.seal_block();

    // The adversary reorgs everything after genesis and replays nothing.
    s.chain.reorg(0).unwrap();
    // Re-deploy in the new history (the adversary controls ordering but
    // not key material).
    let (vault2, _) = s
        .toolkit
        .deploy_shielded(&mut s.chain, Arc::new(Vault), &ShieldParams::default())
        .unwrap();
    // A token for the old context does not verify against a contract at a
    // different address …
    if vault2.address != s.vault {
        let data = smacs_core::client::build_call_data(&payload, vault2.address, tk);
        let r = s
            .client
            .send(&mut s.chain, vault2.address, 0, data)
            .unwrap();
        assert_eq!(r.revert_reason(), Some("SMACS: invalid token signature"));
    }
    // … and an attacker still cannot mint one without sk_TS.
    let attacker = ClientWallet::new(s.chain.funded_keypair(999, 10u128.pow(24)));
    let forged = issue(
        &OwnerToolkit::new(Keypair::from_seed(4242), Keypair::from_seed(4243)),
        TokenType::Super,
        far_future(&s.chain),
        NO_INDEX,
        &PayloadContext {
            sender: attacker.address(),
            contract: vault2.address,
            selector: None,
            calldata: None,
        },
    );
    let r = attacker
        .call_with_token(&mut s.chain, vault2.address, 0, &payload, forged)
        .unwrap();
    assert_eq!(r.revert_reason(), Some("SMACS: invalid token signature"));
}

#[test]
fn value_transfers_pass_through_fallback() {
    // Plain deposits (no selector) skip token verification by design.
    let mut s = setup();
    let before = s.chain.state().balance(s.vault);
    let r = s
        .client
        .send(&mut s.chain, s.vault, 1_000, Vec::new())
        .unwrap();
    assert!(r.status.is_success());
    assert_eq!(s.chain.state().balance(s.vault), before + 1_000);
}
