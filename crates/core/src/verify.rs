//! Alg. 1 — contract-side token verification.
//!
//! ```text
//! Input: a transaction T
//! tk ← extractToken(T)
//! if now() > tk.expire                      → reject (expired)
//! if tk.index > −1 and reused(tk.index)     → reject (one-time reuse)²
//! tkData   ← tk.expire ‖ tk.index
//! addrData ← T.origin ‖ address(this)
//! data     ← tk.type ‖ tkData ‖ addrData
//! Super:    data
//! Method:   data ‖ msg.sig
//! Argument: data ‖ msg.sig ‖ msg.data
//! return SigVerify_pkTS(data, tk.signature)
//! ```
//!
//! ² The paper's pseudocode reads `not reused(...)`, which would reject
//! every *fresh* one-time token — a typo; the implemented condition matches
//! the surrounding prose ("check whether the underlying token has been used
//! before, and then permit or deny accordingly"). The reuse *marking* also
//! happens only after the signature verifies, so an attacker cannot burn
//! indexes by submitting forged tokens.
//!
//! Gas is attributed to the labeled sections the paper's tables report:
//! `parse` (multi-token array handling, Table III), `verify` (signature
//! path, Table II), `bitmap` (one-time bookkeeping, Table II).

use smacs_chain::{CallContext, VmError};
use smacs_primitives::Bytes;
use smacs_token::{split_tokens, PayloadContext, Token, TokenArray, TokenType};

use crate::costs::{
    ARG_PER_PAYLOAD_BYTE_STEPS, METHOD_EXTRA_STEPS, PARSE_PER_ENTRY_STEPS, VERIFY_BASE_STEPS,
};
use crate::layout;
use crate::storage_bitmap::StorageBitmap;

/// What a successful verification yields: the validated token, the payload
/// calldata (the transaction's calldata with the token array stripped), and
/// the full array (for forwarding along a call chain).
#[derive(Clone, Debug)]
pub struct VerifyOutcome {
    /// The token that authorized this call.
    pub token: Token,
    /// Calldata with the token array stripped: selector + application args.
    pub payload: Vec<u8>,
    /// The complete token array, for forwarding to nested SMACS contracts.
    pub tokens: TokenArray,
}

/// Run Alg. 1 against the current call. Reverts (with a reason naming the
/// failed check) unless a valid token for `address(this)` is present.
pub fn verify_incoming(ctx: &mut CallContext<'_, '_>) -> Result<VerifyOutcome, VmError> {
    // ---- extractToken(T): split the token array out of msg.data ----
    ctx.begin_gas_section("parse");
    let data = ctx.msg_data_bytes();
    let split = split_tokens(&data);
    let (payload, tokens) = match split {
        Ok(parts) => parts,
        Err(e) => {
            ctx.end_gas_section();
            return ctx.revert(&format!("SMACS: token array malformed: {e}"));
        }
    };
    // Array scanning cost: free for the single-token fast path (the paper's
    // Table III reports no Parse cost for one token), per-entry above that.
    if tokens.len() > 1 {
        ctx.charge_compute(PARSE_PER_ENTRY_STEPS * tokens.len() as u64)?;
        ctx.charge(ctx.schedule().copy_cost(data.len()))?;
    }
    let payload = payload.to_vec();
    let this = ctx.this_address();
    let token = match tokens.token_for(this) {
        Some(tk) => *tk,
        None => {
            ctx.end_gas_section();
            return ctx.revert("SMACS: no token for this contract");
        }
    };
    ctx.end_gas_section();

    // ---- the verification proper ----
    ctx.begin_gas_section("verify");
    let result = verify_token_inner(ctx, &token, &payload);
    ctx.end_gas_section();
    result?;

    // ---- one-time bookkeeping (only after the signature verified) ----
    if token.is_one_time() {
        ctx.begin_gas_section("bitmap");
        let verdict = StorageBitmap::try_use(ctx, token.index as u128);
        ctx.end_gas_section();
        match verdict? {
            v if v.is_accepted() => {}
            _ => return ctx.revert("SMACS: one-time token already used or missed"),
        }
    }

    Ok(VerifyOutcome {
        token,
        payload,
        tokens,
    })
}

fn verify_token_inner(
    ctx: &mut CallContext<'_, '_>,
    token: &Token,
    payload: &[u8],
) -> Result<(), VmError> {
    // Solidity-level overhead the paper's prototype pays for token
    // extraction and abi.encodePacked reconstruction (see crate::costs).
    ctx.charge_compute(VERIFY_BASE_STEPS)?;

    // if now() > tk.expire → reject.
    if token.is_expired(ctx.now()) {
        return ctx.revert("SMACS: token expired");
    }

    // Reconstruct `data` from the transaction context.
    let mut payload_ctx = PayloadContext {
        sender: ctx.tx_origin(),
        contract: ctx.this_address(),
        selector: None,
        calldata: None,
    };
    match token.ttype {
        TokenType::Super => {}
        TokenType::Method => {
            ctx.charge_compute(METHOD_EXTRA_STEPS)?;
            payload_ctx.selector = ctx.msg_sig();
        }
        TokenType::Argument => {
            ctx.charge_compute(METHOD_EXTRA_STEPS)?;
            ctx.charge_compute(ARG_PER_PAYLOAD_BYTE_STEPS * payload.len() as u64)?;
            payload_ctx.selector = ctx.msg_sig();
            payload_ctx.calldata = Some(payload.to_vec());
        }
    }
    let signing_payload =
        smacs_token::signing_payload(token.ttype, token.expire, token.index, &payload_ctx);
    let digest = ctx.keccak(&signing_payload)?;

    // SigVerify_pkTS: ecrecover + compare against the stored TS address.
    let recovered = ctx.ecrecover(digest, &token.signature)?;
    let stored = layout::word_to_address(ctx.sload(layout::ts_address_slot())?);
    match recovered {
        Some(addr) if addr == stored && !stored.is_zero() => Ok(()),
        _ => ctx.revert("SMACS: invalid token signature"),
    }
}

/// Forward a call to the next SMACS-enabled contract on a call chain
/// (§IV-D): re-attach the *current* transaction's token array to
/// `payload` and issue the nested message call. The callee extracts its own
/// token from the same array.
pub fn forward_call(
    ctx: &mut CallContext<'_, '_>,
    to: smacs_primitives::Address,
    value: u128,
    payload: &[u8],
) -> Result<Bytes, VmError> {
    let data = ctx.msg_data_bytes();
    let (_, tokens) =
        split_tokens(&data).map_err(|e| VmError::Revert(format!("SMACS: forward: {e}")))?;
    ctx.charge(
        ctx.schedule()
            .copy_cost(payload.len() + tokens.len() * smacs_token::array::ENTRY_SIZE),
    )?;
    let nested = smacs_token::append_tokens(payload, &tokens);
    ctx.call(to, value, nested)
}
