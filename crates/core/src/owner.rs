//! Owner-side SDK: key management, bitmap sizing, and deployment.
//!
//! The owner (§III-A) "first generates a public and private key pair
//! (pk_TS, sk_TS), and preloads the Token Service with sk_TS and an initial
//! set of ACRs", then "creates the SMACS-enabled smart contract with the
//! public key pk_TS preloaded". [`OwnerToolkit`] performs both halves of
//! the key ceremony and deploys shielded contracts in one call.

use smacs_chain::{Chain, ChainError, Contract, DeployedContract, Receipt};
use smacs_crypto::Keypair;
use smacs_primitives::Address;
use std::sync::Arc;

use crate::bitmap::bitmap_bits_for;
use crate::shield::SmacsShield;

/// Sizing and trust parameters for a shielded deployment.
#[derive(Clone, Debug)]
pub struct ShieldParams {
    /// One-time token lifetime in seconds (drives bitmap sizing).
    pub token_lifetime_secs: u64,
    /// Expected peak transaction rate (tx/s) the contract must absorb.
    pub max_tx_per_second: f64,
    /// Disable one-time tokens entirely (no bitmap, no deployment cost).
    pub disable_one_time: bool,
}

impl Default for ShieldParams {
    fn default() -> Self {
        // The paper's running configuration: 1-hour lifetime at the
        // observed 35 tx/s peak of the most popular contracts (§VI-A).
        ShieldParams {
            token_lifetime_secs: 3_600,
            max_tx_per_second: 35.0,
            disable_one_time: false,
        }
    }
}

impl ShieldParams {
    /// The bitmap size this configuration requires.
    pub fn bitmap_bits(&self) -> u64 {
        if self.disable_one_time {
            0
        } else {
            bitmap_bits_for(self.token_lifetime_secs, self.max_tx_per_second)
        }
    }
}

/// The owner's toolkit: the owner account, the TS keypair, and deployment
/// helpers.
pub struct OwnerToolkit {
    owner: Keypair,
    ts_keypair: Keypair,
}

impl OwnerToolkit {
    /// Create a toolkit around an existing owner account, generating a
    /// fresh TS keypair deterministically derived for reproducibility.
    pub fn new(owner: Keypair, ts_keypair: Keypair) -> Self {
        OwnerToolkit { owner, ts_keypair }
    }

    /// Deterministic toolkit for tests and experiments.
    pub fn from_seeds(owner_seed: u64, ts_seed: u64) -> Self {
        OwnerToolkit {
            owner: Keypair::from_seed(owner_seed),
            ts_keypair: Keypair::from_seed(ts_seed),
        }
    }

    /// The owner's account keypair.
    pub fn owner(&self) -> &Keypair {
        &self.owner
    }

    /// The TS signing keypair (`sk_TS`) — handed to the Token Service.
    pub fn ts_keypair(&self) -> &Keypair {
        &self.ts_keypair
    }

    /// The TS verification address (`pk_TS` in address form) — preloaded
    /// into contracts.
    pub fn ts_address(&self) -> Address {
        self.ts_keypair.address()
    }

    /// Wrap `logic` in a [`SmacsShield`] and deploy it.
    pub fn deploy_shielded(
        &self,
        chain: &mut Chain,
        logic: Arc<dyn Contract>,
        params: &ShieldParams,
    ) -> Result<(DeployedContract, Receipt), ChainError> {
        let shield = SmacsShield::new(logic, self.ts_address(), params.bitmap_bits());
        chain.deploy(&self.owner, Arc::new(shield))
    }

    /// [`OwnerToolkit::deploy_shielded`] with an explicit gas limit, for
    /// deployments whose bitmap initialization exceeds the default limit
    /// (Table IV's 126 kbit bitmap).
    pub fn deploy_shielded_with_limit(
        &self,
        chain: &mut Chain,
        logic: Arc<dyn Contract>,
        params: &ShieldParams,
        gas_limit: u64,
    ) -> Result<(DeployedContract, Receipt), ChainError> {
        let shield = SmacsShield::new(logic, self.ts_address(), params.bitmap_bits());
        chain.deploy_with_limit(&self.owner, Arc::new(shield), 0, gas_limit)
    }

    /// Deploy `logic` unshielded — the legacy baseline the paper compares
    /// against.
    pub fn deploy_legacy(
        &self,
        chain: &mut Chain,
        logic: Arc<dyn Contract>,
    ) -> Result<(DeployedContract, Receipt), ChainError> {
        chain.deploy(&self.owner, logic)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_params_match_paper_configuration() {
        let params = ShieldParams::default();
        assert_eq!(params.bitmap_bits(), 126_000); // 3600 s × 35 tx/s
        let disabled = ShieldParams {
            disable_one_time: true,
            ..params
        };
        assert_eq!(disabled.bitmap_bits(), 0);
    }

    #[test]
    fn toolkit_keys_are_distinct() {
        let toolkit = OwnerToolkit::from_seeds(1, 2);
        assert_ne!(toolkit.owner().address(), toolkit.ts_address());
    }
}
