//! Storage layout for the SMACS metadata a shielded contract keeps.
//!
//! The shield reserves slots derived from keccak-hashed labels (the same
//! collision-avoidance idiom Solidity uses for mappings), so SMACS metadata
//! can never collide with the wrapped contract's own slots:
//!
//! - `smacs.ts`           — the TS verification address (the 20-byte address
//!   form of `pk_TS`; `ecrecover`-based verification compares against it);
//! - `smacs.bitmap.meta`  — packed window state: `start` (u128) ‖
//!   `start_ptr` (u64) ‖ `n_bits` (u64);
//! - `smacs.bitmap.epoch` — reset epoch (bumping it logically zeroes every
//!   word without O(n) clears);
//! - `smacs.bitmap.word`  — base for per-word slots, keyed by (epoch, index).

use smacs_crypto::keccak256_concat;
use smacs_primitives::{H256, U256};

/// Slot holding the TS address (`pk_TS`).
pub fn ts_address_slot() -> H256 {
    smacs_crypto::keccak256(b"smacs.ts")
}

/// Slot holding the packed bitmap window state.
pub fn bitmap_meta_slot() -> H256 {
    smacs_crypto::keccak256(b"smacs.bitmap.meta")
}

/// Slot holding the bitmap reset epoch.
pub fn bitmap_epoch_slot() -> H256 {
    smacs_crypto::keccak256(b"smacs.bitmap.epoch")
}

/// Slot for bitmap word `word_index` under reset epoch `epoch`.
pub fn bitmap_word_slot(epoch: u64, word_index: u64) -> H256 {
    keccak256_concat(&[
        b"smacs.bitmap.word",
        &epoch.to_be_bytes(),
        &word_index.to_be_bytes(),
    ])
}

/// Pack the bitmap window state into one storage word.
pub fn pack_bitmap_meta(start: u128, start_ptr: u64, n_bits: u64) -> H256 {
    let mut bytes = [0u8; 32];
    bytes[..16].copy_from_slice(&start.to_be_bytes());
    bytes[16..24].copy_from_slice(&start_ptr.to_be_bytes());
    bytes[24..].copy_from_slice(&n_bits.to_be_bytes());
    H256(bytes)
}

/// Unpack [`pack_bitmap_meta`].
pub fn unpack_bitmap_meta(word: H256) -> (u128, u64, u64) {
    let start = u128::from_be_bytes(word.0[..16].try_into().expect("16 bytes"));
    let start_ptr = u64::from_be_bytes(word.0[16..24].try_into().expect("8 bytes"));
    let n_bits = u64::from_be_bytes(word.0[24..].try_into().expect("8 bytes"));
    (start, start_ptr, n_bits)
}

/// Store an address in a storage word (right-aligned, like Solidity).
pub fn address_to_word(addr: smacs_primitives::Address) -> H256 {
    let mut bytes = [0u8; 32];
    bytes[12..].copy_from_slice(addr.as_bytes());
    H256(bytes)
}

/// Read an address back from a storage word.
pub fn word_to_address(word: H256) -> smacs_primitives::Address {
    smacs_primitives::Address::from_slice(&word.0[12..]).expect("20-byte suffix")
}

/// Number of 256-bit storage words needed for an `n_bits` bitmap.
pub fn bitmap_word_count(n_bits: u64) -> u64 {
    n_bits.div_ceil(256)
}

/// Set bit `bit` in a 256-bit storage word.
pub fn set_bit(word: H256, bit: u32) -> H256 {
    H256::from_u256(word.to_u256() | (U256::ONE << bit))
}

/// Test bit `bit` in a 256-bit storage word.
pub fn get_bit(word: H256, bit: u32) -> bool {
    word.to_u256().bit(bit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use smacs_primitives::Address;

    #[test]
    fn slots_are_distinct() {
        let slots = [
            ts_address_slot(),
            bitmap_meta_slot(),
            bitmap_epoch_slot(),
            bitmap_word_slot(0, 0),
            bitmap_word_slot(0, 1),
            bitmap_word_slot(1, 0),
        ];
        for (i, a) in slots.iter().enumerate() {
            for b in &slots[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn meta_pack_round_trip() {
        let cases = [
            (0u128, 0u64, 1u64),
            (u128::MAX, u64::MAX, 126_000),
            (42, 7, 256),
        ];
        for (start, ptr, n) in cases {
            assert_eq!(
                unpack_bitmap_meta(pack_bitmap_meta(start, ptr, n)),
                (start, ptr, n)
            );
        }
    }

    #[test]
    fn address_word_round_trip() {
        let addr = Address::from_low_u64(0xDEADBEEF);
        assert_eq!(word_to_address(address_to_word(addr)), addr);
    }

    #[test]
    fn word_count_rounds_up() {
        assert_eq!(bitmap_word_count(1), 1);
        assert_eq!(bitmap_word_count(256), 1);
        assert_eq!(bitmap_word_count(257), 2);
        assert_eq!(bitmap_word_count(126_000), 493);
    }

    #[test]
    fn bit_ops() {
        let w = H256::ZERO;
        assert!(!get_bit(w, 0));
        let w = set_bit(w, 0);
        assert!(get_bit(w, 0));
        let w = set_bit(w, 255);
        assert!(get_bit(w, 255));
        assert!(!get_bit(w, 128));
        // Setting is idempotent.
        assert_eq!(set_bit(w, 0), w);
    }
}
