//! Client-side SDK: build token-bearing calldata and transactions.
//!
//! A SMACS client (§III-A) obtains tokens from the TS, then "constructs a
//! transaction with the token encoded into it". This module performs the
//! encoding: the application payload (selector + ABI args) with the token
//! array appended (see [`smacs_token::array`]), wrapped into a signed
//! transaction.

use smacs_chain::{Chain, ChainError, Receipt, Transaction};
use smacs_crypto::Keypair;
use smacs_primitives::Address;
use smacs_token::{append_tokens, Token, TokenArray, TokenRequest};
use smacs_ts::ApiError;
use std::fmt;

use crate::fetcher::TokenFetcher;

/// A failure in the acquire-token-then-call path: either the TS said no or
/// the chain did.
#[derive(Clone, Debug)]
pub enum WalletError {
    /// Token acquisition failed.
    Api(ApiError),
    /// The transaction was rejected by the chain.
    Chain(ChainError),
}

impl fmt::Display for WalletError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalletError::Api(e) => write!(f, "token acquisition failed: {e}"),
            WalletError::Chain(e) => write!(f, "chain rejected transaction: {e:?}"),
        }
    }
}

impl std::error::Error for WalletError {}

impl From<ApiError> for WalletError {
    fn from(e: ApiError) -> Self {
        WalletError::Api(e)
    }
}

impl From<ChainError> for WalletError {
    fn from(e: ChainError) -> Self {
        WalletError::Chain(e)
    }
}

/// Build calldata carrying a single token for `contract`.
pub fn build_call_data(payload: &[u8], contract: Address, token: Token) -> Vec<u8> {
    let tokens = TokenArray::new().with(contract, token);
    append_tokens(payload, &tokens)
}

/// Build calldata carrying one token per contract of a call chain (§IV-D):
/// `SC_A: tk_A ‖ SC_B: tk_B ‖ …`.
pub fn build_chain_call_data(payload: &[u8], tokens: &[(Address, Token)]) -> Vec<u8> {
    let mut array = TokenArray::new();
    for (addr, tk) in tokens {
        array.push(*addr, *tk);
    }
    append_tokens(payload, &array)
}

/// A client wallet: a keypair plus convenience calls against a [`Chain`].
///
/// This models the paper's "client-side software (usually called a wallet)"
/// — the token attachment "can be easily integrated into mainstream
/// wallets, such that it is executed seamlessly for users prior to actual
/// transaction sending" (§IV-B).
pub struct ClientWallet {
    keypair: Keypair,
}

impl ClientWallet {
    /// Wrap a keypair.
    pub fn new(keypair: Keypair) -> Self {
        ClientWallet { keypair }
    }

    /// The wallet's address (`sAddr` in token requests; `tx.origin` on
    /// chain).
    pub fn address(&self) -> Address {
        self.keypair.address()
    }

    /// The underlying keypair (for TS request signing etc.).
    pub fn keypair(&self) -> &Keypair {
        &self.keypair
    }

    /// Call a SMACS-enabled contract with one token.
    pub fn call_with_token(
        &self,
        chain: &mut Chain,
        contract: Address,
        value: u128,
        payload: &[u8],
        token: Token,
    ) -> Result<Receipt, ChainError> {
        let data = build_call_data(payload, contract, token);
        self.send(chain, contract, value, data)
    }

    /// Call the first contract of a chain with a full token array.
    pub fn call_with_tokens(
        &self,
        chain: &mut Chain,
        first_contract: Address,
        value: u128,
        payload: &[u8],
        tokens: &[(Address, Token)],
    ) -> Result<Receipt, ChainError> {
        let data = build_chain_call_data(payload, tokens);
        self.send(chain, first_contract, value, data)
    }

    /// A token request for this wallet: `sAddr` is the wallet's address.
    pub fn method_request(&self, contract: Address, method: impl Into<String>) -> TokenRequest {
        TokenRequest::method_token(contract, self.address(), method)
    }

    /// The full §III-C client loop in one call: obtain a method token
    /// through `fetcher` (cache or TS — any [`smacs_ts::TsApi`] transport)
    /// and spend it on `contract`. `payload` must start with the selector
    /// of `method_sig`.
    pub fn call_via(
        &self,
        chain: &mut Chain,
        fetcher: &TokenFetcher,
        contract: Address,
        value: u128,
        method_sig: &str,
        payload: &[u8],
    ) -> Result<Receipt, WalletError> {
        let now = chain.pending_env().timestamp;
        let token = fetcher.fetch(&self.method_request(contract, method_sig), now)?;
        Ok(self.call_with_token(chain, contract, value, payload, token)?)
    }

    /// Send a raw (already token-bearing) call.
    pub fn send(
        &self,
        chain: &mut Chain,
        to: Address,
        value: u128,
        data: Vec<u8>,
    ) -> Result<Receipt, ChainError> {
        let nonce = chain.state().nonce(self.address());
        let tx = Transaction::call(nonce, to, value, data);
        chain.submit(tx.sign(&self.keypair))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smacs_crypto::Keypair;
    use smacs_token::{split_tokens, TokenType, NO_INDEX};

    fn token(ttype: TokenType) -> Token {
        Token {
            ttype,
            expire: 2_000_000_000,
            index: NO_INDEX,
            signature: Keypair::from_seed(5).sign_message(b"x"),
        }
    }

    #[test]
    fn single_token_calldata_round_trips() {
        let payload = vec![1, 2, 3, 4, 5, 6];
        let contract = Address::from_low_u64(9);
        let data = build_call_data(&payload, contract, token(TokenType::Super));
        let (got_payload, array) = split_tokens(&data).unwrap();
        assert_eq!(got_payload, &payload[..]);
        assert_eq!(array.len(), 1);
        assert!(array.token_for(contract).is_some());
    }

    #[test]
    fn chain_calldata_carries_all_tokens_in_order() {
        let payload = vec![0xaa; 4];
        let entries = vec![
            (Address::from_low_u64(1), token(TokenType::Method)),
            (Address::from_low_u64(2), token(TokenType::Argument)),
            (Address::from_low_u64(3), token(TokenType::Super)),
        ];
        let data = build_chain_call_data(&payload, &entries);
        let (_, array) = split_tokens(&data).unwrap();
        assert_eq!(array.len(), 3);
        for (addr, _) in &entries {
            assert!(array.token_for(*addr).is_some());
        }
    }

    #[test]
    fn wallet_exposes_keypair_address() {
        let kp = Keypair::from_seed(77);
        let addr = kp.address();
        let wallet = ClientWallet::new(kp);
        assert_eq!(wallet.address(), addr);
    }
}
