//! Alg. 2 — the cyclically reused one-time-token bitmap, as a pure state
//! machine.
//!
//! An `n`-bit map tracks the used/unused status of the `n` one-time tokens
//! with consecutive indexes `start … end = start + n − 1`. Position
//! `startPtr` holds index `start`'s bit; positions wrap modulo `n`. When a
//! token with index beyond `end` arrives, `seek()` slides the window
//! forward (losing — conservatively rejecting — any indexes that fall off
//! the back: a *token miss*); an index beyond `end + n` resets the window
//! entirely.
//!
//! This pure version is the reference for property tests and for TS
//! replicas that model contract state; the gas-charged on-chain version
//! ([`crate::storage_bitmap`]) implements the same transitions over
//! storage words.

/// The §IV-C sizing rule: a bitmap that never misses an unexpired token
/// needs `token_lifetime × max_tx_per_second` bits.
///
/// `tx_rate` may be fractional (Table IV sweeps 35 / 3.5 / 0.35 tx/s).
pub fn bitmap_bits_for(token_lifetime_secs: u64, tx_rate_per_sec: f64) -> u64 {
    (token_lifetime_secs as f64 * tx_rate_per_sec).ceil() as u64
}

/// Outcome of presenting a one-time token index to the bitmap.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BitmapVerdict {
    /// Index accepted and now marked used.
    Accepted,
    /// Index below the window — either genuinely used or lost to a window
    /// slide (a token miss). Rejected either way.
    RejectedStale,
    /// Index within the window but its bit was already set.
    RejectedUsed,
}

impl BitmapVerdict {
    /// True iff the access was permitted.
    pub fn is_accepted(self) -> bool {
        matches!(self, BitmapVerdict::Accepted)
    }
}

/// The Alg. 2 state: `(S, start, startPtr, end, endPtr)` with
/// `end = start + n − 1` and `endPtr = startPtr + n − 1 mod n` both kept
/// implicit.
///
/// ```
/// use smacs_core::bitmap::{BitmapState, BitmapVerdict};
///
/// let mut bm = BitmapState::new(8);
/// assert!(bm.try_use(3).is_accepted());
/// assert_eq!(bm.try_use(3), BitmapVerdict::RejectedUsed); // one-time
/// assert!(bm.try_use(9).is_accepted());                   // window slides
/// assert_eq!(bm.start(), 2);
/// assert_eq!(bm.try_use(1), BitmapVerdict::RejectedStale); // token miss
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BitmapState {
    bits: Vec<bool>,
    start: u128,
    start_ptr: usize,
}

impl BitmapState {
    /// A fresh bitmap of `n` bits covering indexes `0 … n−1`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "bitmap must have at least one bit");
        BitmapState {
            bits: vec![false; n],
            start: 0,
            start_ptr: 0,
        }
    }

    /// Capacity in bits.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Always false — the bitmap is never empty (n > 0 enforced).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Lowest index the window currently covers.
    pub fn start(&self) -> u128 {
        self.start
    }

    /// Highest index the window currently covers.
    pub fn end(&self) -> u128 {
        self.start + self.bits.len() as u128 - 1
    }

    /// Whether index `i` would currently be treated as used/stale (without
    /// mutating).
    pub fn is_spent(&self, i: u128) -> bool {
        if i < self.start {
            return true;
        }
        if i > self.end() {
            return false;
        }
        let t = self.position_of(i);
        self.bits[t]
    }

    fn position_of(&self, i: u128) -> usize {
        let n = self.bits.len();
        ((self.start_ptr as u128 + (i - self.start)) % n as u128) as usize
    }

    /// Present index `i`: Alg. 2's update. Returns whether the access is
    /// permitted and mutates the window accordingly.
    pub fn try_use(&mut self, i: u128) -> BitmapVerdict {
        let n = self.bits.len() as u128;
        let end = self.end();
        if i < self.start {
            return BitmapVerdict::RejectedStale;
        }
        if i <= end {
            let t = self.position_of(i);
            if self.bits[t] {
                return BitmapVerdict::RejectedUsed;
            }
            self.bits[t] = true;
            return BitmapVerdict::Accepted;
        }
        if i <= end + n {
            // Slide the window forward by exactly d = i − end. The paper's
            // seek() searches further for a zero bit, but any displacement
            // beyond the minimum shifts the bit↔index association and can
            // re-accept a used index; the minimal slide keeps every
            // surviving index bound to its original bit, so stale set bits
            // can only cause conservative misses, never double acceptance.
            // (Both §IV-C worked examples produce the minimal displacement,
            // so they are reproduced exactly — see the tests below.)
            let d = (i - end) as usize;
            let nn = self.bits.len();
            self.start_ptr = (self.start_ptr + d) % nn;
            self.start = i - n + 1;
            let end_ptr = (self.start_ptr + nn - 1) % nn;
            // i > every previous end, hence never accepted before: accept.
            self.bits[end_ptr] = true;
            BitmapVerdict::Accepted
        } else {
            // i > end + n: reset the whole window. (The paper's pseudocode
            // forgets to mark i as used here; we mark it.)
            self.reset_to(i);
            BitmapVerdict::Accepted
        }
    }

    fn reset_to(&mut self, i: u128) {
        for bit in &mut self.bits {
            *bit = false;
        }
        self.start_ptr = 0;
        self.start = i;
        self.bits[0] = true;
    }

    /// Number of set bits (used indexes currently remembered).
    pub fn used_count(&self) -> usize {
        self.bits.iter().filter(|&&b| b).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;

    #[test]
    fn sizing_rule_matches_table_iv() {
        // 1-hour lifetime at the paper's three rates.
        assert_eq!(bitmap_bits_for(3600, 35.0), 126_000);
        assert_eq!(bitmap_bits_for(3600, 3.5), 12_600);
        assert_eq!(bitmap_bits_for(3600, 0.35), 1_260);
        // 15.38 KB, 1.54 KB, 0.154 KB as the paper reports.
        assert!((126_000.0_f64 / 8.0 / 1024.0 - 15.38).abs() < 0.01);
    }

    #[test]
    fn fresh_indexes_accepted_once() {
        let mut bm = BitmapState::new(8);
        for i in 0..8 {
            assert!(bm.try_use(i).is_accepted(), "index {i}");
            assert_eq!(bm.try_use(i), BitmapVerdict::RejectedUsed, "index {i}");
        }
    }

    /// The worked example from §IV-C, followed literally.
    #[test]
    fn paper_worked_example() {
        let mut bm = BitmapState::new(8);
        for i in [0u128, 1, 4, 5] {
            assert!(bm.try_use(i).is_accepted());
        }
        assert_eq!(bm.start(), 0);
        assert_eq!(bm.end(), 7);

        // Token 9 arrives: seek returns 2, window becomes [2, 9].
        assert!(bm.try_use(9).is_accepted());
        assert_eq!(bm.start(), 2);
        assert_eq!(bm.end(), 9);

        // Token 13: seek needs displacement ≥ 4 from startPtr 2 → j = 6,
        // window becomes [6, 13].
        assert!(bm.try_use(13).is_accepted());
        assert_eq!(bm.start(), 6);
        assert_eq!(bm.end(), 13);

        // "the information of the unused tokens with indexes 2 and 3 is
        // lost (access requests originated from these two tokens will be
        // rejected)" — token misses.
        assert_eq!(bm.try_use(2), BitmapVerdict::RejectedStale);
        assert_eq!(bm.try_use(3), BitmapVerdict::RejectedStale);
    }

    #[test]
    fn used_tokens_stay_used_across_slides() {
        let mut bm = BitmapState::new(8);
        assert!(bm.try_use(5).is_accepted());
        assert!(bm.try_use(9).is_accepted()); // slides window
                                              // 5 still within window [2..9] and must stay used.
        assert!(bm.start() <= 5);
        assert_eq!(bm.try_use(5), BitmapVerdict::RejectedUsed);
        assert_eq!(bm.try_use(9), BitmapVerdict::RejectedUsed);
    }

    #[test]
    fn far_future_index_resets() {
        let mut bm = BitmapState::new(8);
        assert!(bm.try_use(3).is_accepted());
        // 100 > end + n = 7 + 8: reset.
        assert!(bm.try_use(100).is_accepted());
        assert_eq!(bm.start(), 100);
        assert_eq!(bm.end(), 107);
        // The reset marks 100 itself used (paper omission, fixed).
        assert_eq!(bm.try_use(100), BitmapVerdict::RejectedUsed);
        // And everything older is stale.
        assert_eq!(bm.try_use(3), BitmapVerdict::RejectedStale);
        // Fresh indexes in the new window work.
        assert!(bm.try_use(101).is_accepted());
    }

    #[test]
    fn slide_over_full_window_is_sound() {
        let mut bm = BitmapState::new(4);
        for i in 0..4 {
            assert!(bm.try_use(i).is_accepted());
        }
        // Window full; index 5 slides the window to [2, 5] and is accepted
        // (it is above every previous end, hence provably fresh).
        assert!(bm.try_use(5).is_accepted());
        assert_eq!(bm.start(), 2);
        assert_eq!(bm.end(), 5);
        assert_eq!(bm.try_use(5), BitmapVerdict::RejectedUsed);
        // Index 4's recycled position carries index 0's stale bit — a
        // conservative miss, not a double acceptance.
        assert_eq!(bm.try_use(4), BitmapVerdict::RejectedUsed);
    }

    /// The exact scenario where the paper's zero-bit seek() would re-accept
    /// a used index: n = 4, indexes 0 and 1 used, then 4 arrives. The
    /// paper's seek would slide startPtr by 2 (first zero bit), remapping
    /// used index 1 onto a zero bit. The minimal slide keeps 1 rejected.
    #[test]
    fn paper_seek_double_spend_case_is_fixed() {
        let mut bm = BitmapState::new(4);
        assert!(bm.try_use(0).is_accepted());
        assert!(bm.try_use(1).is_accepted());
        assert!(bm.try_use(4).is_accepted());
        assert_eq!(bm.try_use(1), BitmapVerdict::RejectedUsed);
    }

    #[test]
    fn is_spent_is_side_effect_free() {
        let mut bm = BitmapState::new(8);
        bm.try_use(2);
        let before = bm.clone();
        assert!(bm.is_spent(2));
        assert!(!bm.is_spent(3));
        assert!(!bm.is_spent(100)); // beyond window: would be accepted
        assert!(bm.is_spent(0) == (bm.start() > 0));
        assert_eq!(bm, before);
    }

    #[test]
    #[should_panic(expected = "at least one bit")]
    fn zero_size_panics() {
        BitmapState::new(0);
    }

    proptest! {
        /// THE one-time invariant: no index is ever accepted twice, no
        /// matter the arrival order.
        #[test]
        fn prop_no_index_accepted_twice(
            n in 1usize..64,
            indexes in prop::collection::vec(0u128..200, 1..100),
        ) {
            let mut bm = BitmapState::new(n);
            let mut accepted = HashSet::new();
            for i in indexes {
                if bm.try_use(i).is_accepted() {
                    prop_assert!(
                        accepted.insert(i),
                        "index {i} accepted twice (n={n})"
                    );
                }
            }
        }

        /// Strictly increasing indexes within capacity never miss.
        #[test]
        fn prop_monotone_arrivals_never_miss(
            n in 1usize..64,
            count in 1usize..100,
        ) {
            let mut bm = BitmapState::new(n);
            for i in 0..count as u128 {
                prop_assert!(bm.try_use(i).is_accepted(), "index {i} missed (n={n})");
            }
        }

        /// The window always covers exactly n consecutive indexes.
        #[test]
        fn prop_window_width_invariant(
            n in 1usize..32,
            indexes in prop::collection::vec(0u128..100, 0..50),
        ) {
            let mut bm = BitmapState::new(n);
            for i in indexes {
                bm.try_use(i);
                prop_assert_eq!(bm.end() - bm.start() + 1, n as u128);
            }
        }
    }
}
