//! Client-side token acquisition with caching: the layer between a wallet
//! and a [`TsApi`] endpoint.
//!
//! A token is valid for its whole lifetime (1 hour in the paper's Table IV
//! analysis), but the naive client re-applies to the TS on every call —
//! paying a signing round trip each time. [`TokenFetcher`] caches issued
//! tokens keyed by `(contract, type, method)` — plus the requesting
//! sender, since the TS signature binds `sAddr` and a token cached for
//! one wallet must never be served to another — and transparently re-fetches
//! when a cached token is within the refresh margin of expiry, so a busy
//! client hits the TS once per token lifetime instead of once per
//! transaction.
//!
//! Two request shapes are deliberately **never cached**:
//!
//! - one-time tokens — single-use by construction (§IV-C);
//! - argument tokens — the signature binds the exact calldata, so a cached
//!   one would only ever match a byte-identical call (and those are
//!   usually one-time anyway).
//!
//! Both pass straight through to the API.
//!
//! The fetcher is endpoint-agnostic: wrap a `smacs_ts::FailoverClient`
//! (built from the replica directory in discovery metadata) and the cache
//! sits in front of a whole replica set — every replica signs with the
//! same `sk_TS`, so a token minted by any of them verifies identically and
//! caches safely regardless of which replica answered.

use parking_lot::Mutex;
use smacs_primitives::Address;
use smacs_token::{Token, TokenRequest, TokenType};
use smacs_ts::{ApiError, TsApi};
use std::collections::HashMap;
use std::sync::Arc;

type CacheKey = (Address, Address, TokenType, Option<String>);

/// A caching token source over any [`TsApi`] endpoint (in-process or
/// HTTP — the fetcher cannot tell, which is the point).
pub struct TokenFetcher {
    api: Arc<dyn TsApi>,
    /// Re-fetch when a cached token expires within this many seconds.
    refresh_margin_secs: u64,
    cache: Mutex<HashMap<CacheKey, Token>>,
    hits: std::sync::atomic::AtomicU64,
    misses: std::sync::atomic::AtomicU64,
}

impl TokenFetcher {
    /// Default refresh margin: re-fetch inside the last minute of a
    /// token's life, so an in-flight transaction never carries a token
    /// that expires before it lands.
    pub const DEFAULT_REFRESH_MARGIN_SECS: u64 = 60;

    /// Wrap an API endpoint.
    pub fn new(api: Arc<dyn TsApi>) -> TokenFetcher {
        TokenFetcher {
            api,
            refresh_margin_secs: Self::DEFAULT_REFRESH_MARGIN_SECS,
            cache: Mutex::new(HashMap::new()),
            hits: std::sync::atomic::AtomicU64::new(0),
            misses: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Override the refresh margin.
    pub fn with_refresh_margin(mut self, secs: u64) -> TokenFetcher {
        self.refresh_margin_secs = secs;
        self
    }

    /// The wrapped endpoint.
    pub fn api(&self) -> &Arc<dyn TsApi> {
        &self.api
    }

    /// `(cache hits, cache misses)` so far.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(std::sync::atomic::Ordering::Relaxed),
            self.misses.load(std::sync::atomic::Ordering::Relaxed),
        )
    }

    fn cacheable(request: &TokenRequest) -> bool {
        !request.one_time && request.ttype != TokenType::Argument
    }

    fn fresh(&self, token: &Token, now: u64) -> bool {
        (token.expire as u64) > now.saturating_add(self.refresh_margin_secs)
    }

    /// Obtain a token for `request` at client-local time `now`: from cache
    /// when a fresh one is held, from the TS otherwise.
    pub fn fetch(&self, request: &TokenRequest, now: u64) -> Result<Token, ApiError> {
        if !Self::cacheable(request) {
            return self.api.issue(request);
        }
        let key = cache_key(request);
        if let Some(token) = self.cache.lock().get(&key) {
            if self.fresh(token, now) {
                self.hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                return Ok(*token);
            }
        }
        self.misses
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let token = self.api.issue(request)?;
        self.cache.lock().insert(key, token);
        Ok(token)
    }

    /// Warm the cache for many requests in one `issue_batch` round trip —
    /// what a wallet does at startup for the contracts it talks to.
    /// Returns per-request outcomes; cacheable successes are retained.
    pub fn prefetch(
        &self,
        requests: &[TokenRequest],
        now: u64,
    ) -> Result<Vec<Result<Token, ApiError>>, ApiError> {
        // Only fetch what the cache can't already serve.
        let mut wanted = Vec::new();
        let mut wanted_idx = Vec::new();
        let mut results: Vec<Option<Result<Token, ApiError>>> = vec![None; requests.len()];
        {
            let cache = self.cache.lock();
            for (i, request) in requests.iter().enumerate() {
                let key = cache_key(request);
                match cache.get(&key) {
                    Some(token) if Self::cacheable(request) && self.fresh(token, now) => {
                        self.hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        results[i] = Some(Ok(*token));
                    }
                    _ => {
                        wanted.push(request.clone());
                        wanted_idx.push(i);
                    }
                }
            }
        }
        if !wanted.is_empty() {
            // Count misses for cacheable requests only, matching `fetch`
            // (one-time/argument requests bypass the cache and its stats).
            let cacheable_misses = wanted.iter().filter(|r| Self::cacheable(r)).count() as u64;
            self.misses
                .fetch_add(cacheable_misses, std::sync::atomic::Ordering::Relaxed);
            let fetched = self.api.issue_batch(&wanted)?;
            let mut cache = self.cache.lock();
            for ((i, request), outcome) in wanted_idx.iter().zip(&wanted).zip(fetched) {
                if let Ok(token) = &outcome {
                    if Self::cacheable(request) {
                        cache.insert(cache_key(request), *token);
                    }
                }
                results[*i] = Some(outcome);
            }
        }
        Ok(results
            .into_iter()
            .map(|r| r.expect("every slot filled"))
            .collect())
    }

    /// Drop every cached token (e.g. after the owner rotated rules and
    /// outstanding tokens should not be reused).
    pub fn clear(&self) {
        self.cache.lock().clear();
    }
}

fn cache_key(request: &TokenRequest) -> CacheKey {
    (
        request.contract,
        request.sender,
        request.ttype,
        request.method.clone(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use smacs_crypto::Keypair;
    use smacs_ts::{InProcessClient, RuleBook, TokenService, TokenServiceConfig};

    fn fetcher_at(now: u64) -> (TokenFetcher, InProcessClient) {
        let api = InProcessClient::new(
            TokenService::new(
                Keypair::from_seed(7),
                RuleBook::permissive(),
                TokenServiceConfig::default(),
            ),
            "secret",
            now,
        );
        (TokenFetcher::new(Arc::new(api.clone())), api)
    }

    fn contract() -> Address {
        Address::from_low_u64(0xC0)
    }

    fn sender() -> Address {
        Address::from_low_u64(0x5E)
    }

    #[test]
    fn caches_method_tokens_until_refresh_margin() {
        let (fetcher, api) = fetcher_at(1_000);
        let req = TokenRequest::method_token(contract(), sender(), "f()");
        let t1 = fetcher.fetch(&req, 1_000).unwrap();
        let t2 = fetcher.fetch(&req, 1_000).unwrap();
        assert_eq!(t1, t2);
        assert_eq!(fetcher.stats(), (1, 1));

        // Client clock approaches expiry: the fetcher refreshes even
        // though the cached token is technically still valid.
        api.set_time(t1.expire as u64 - 30);
        let t3 = fetcher.fetch(&req, t1.expire as u64 - 30).unwrap();
        assert_ne!(t1.expire, t3.expire, "must have re-fetched");
        assert_eq!(fetcher.stats(), (1, 2));
    }

    #[test]
    fn distinct_keys_get_distinct_cache_slots() {
        let (fetcher, _api) = fetcher_at(0);
        let f = TokenRequest::method_token(contract(), sender(), "f()");
        let g = TokenRequest::method_token(contract(), sender(), "g()");
        let sup = TokenRequest::super_token(contract(), sender());
        fetcher.fetch(&f, 0).unwrap();
        fetcher.fetch(&g, 0).unwrap();
        fetcher.fetch(&sup, 0).unwrap();
        assert_eq!(fetcher.stats(), (0, 3));
        fetcher.fetch(&f, 0).unwrap();
        fetcher.fetch(&g, 0).unwrap();
        fetcher.fetch(&sup, 0).unwrap();
        assert_eq!(fetcher.stats(), (3, 3));
    }

    #[test]
    fn distinct_senders_never_share_a_cached_token() {
        // The TS signature binds the sender; a fetcher shared by two
        // wallets must not serve one wallet's token to the other.
        let (fetcher, _api) = fetcher_at(0);
        let a = TokenRequest::method_token(contract(), Address::from_low_u64(1), "f()");
        let b = TokenRequest::method_token(contract(), Address::from_low_u64(2), "f()");
        fetcher.fetch(&a, 0).unwrap();
        fetcher.fetch(&b, 0).unwrap();
        assert_eq!(fetcher.stats(), (0, 2), "second sender must miss");
    }

    #[test]
    fn one_time_and_argument_requests_bypass_the_cache() {
        let (fetcher, _api) = fetcher_at(0);
        let one_time = TokenRequest::method_token(contract(), sender(), "f()").one_time();
        let a = fetcher.fetch(&one_time, 0).unwrap();
        let b = fetcher.fetch(&one_time, 0).unwrap();
        assert_ne!(a.index, b.index, "one-time tokens must never be reused");

        let arg = TokenRequest::argument_token(contract(), sender(), "f()", vec![], vec![1]);
        fetcher.fetch(&arg, 0).unwrap();
        fetcher.fetch(&arg, 0).unwrap();
        // Neither shape touched the cache counters' hit path.
        assert_eq!(fetcher.stats().0, 0);
    }

    #[test]
    fn prefetch_warms_the_cache_in_one_round_trip() {
        let (fetcher, _api) = fetcher_at(0);
        let reqs: Vec<TokenRequest> = (0..5)
            .map(|i| TokenRequest::method_token(contract(), sender(), format!("m{i}()")))
            .collect();
        let results = fetcher.prefetch(&reqs, 0).unwrap();
        assert!(results.iter().all(|r| r.is_ok()));
        assert_eq!(fetcher.stats(), (0, 5));
        // Every later fetch is a hit.
        for req in &reqs {
            fetcher.fetch(req, 0).unwrap();
        }
        assert_eq!(fetcher.stats(), (5, 5));
        // Prefetching again serves from cache.
        fetcher.prefetch(&reqs, 0).unwrap();
        assert_eq!(fetcher.stats(), (10, 5));
    }

    #[test]
    fn clear_forces_refetch() {
        let (fetcher, _api) = fetcher_at(0);
        let req = TokenRequest::method_token(contract(), sender(), "f()");
        fetcher.fetch(&req, 0).unwrap();
        fetcher.clear();
        fetcher.fetch(&req, 0).unwrap();
        assert_eq!(fetcher.stats(), (0, 2));
    }
}
