//! Gas calibration for the SMACS verification path.
//!
//! The chain simulator charges Yellow-Paper primitives exactly (`ecrecover`
//! 3000, `SLOAD` 200, `SSTORE` 20000/5000, keccak 30+6/word, …), but the
//! paper's measured verification costs (Table II) are dominated by
//! *Solidity-level* overhead its prototype pays on top of those primitives:
//! copying the token out of calldata into memory, `abi.encodePacked`
//! assembly of the signing payload, string handling for `argName`/
//! `argValue`, and the v0.4.24 ABI decoder. A Rust contract does not pay
//! those costs natively, so the shield charges them explicitly through
//! [`smacs_chain::CallContext::charge_compute`], with constants calibrated
//! once against Table II's anchors:
//!
//! | anchor                         | paper value | calibration target |
//! |--------------------------------|-------------|--------------------|
//! | super-token Verify             | 108 282     | `VERIFY_BASE_STEPS` + primitives ≈ 108k |
//! | method − super Verify          |   6 826     | `METHOD_EXTRA_STEPS` |
//! | argument − method Verify       | 215 781     | `ARG_PER_PAYLOAD_BYTE_STEPS × payload_len` |
//! | one-time Bitmap surcharge      | ~27 500–28 000 | primitives (SSTORE-dominated) + `BITMAP_OVERHEAD_STEPS` |
//!
//! The *shapes* the experiments assert (argument > method > super; linear
//! growth in call-chain depth; bitmap surcharge roughly constant) are
//! structural — they come from which primitives run, not from these
//! constants. The constants only pin absolute magnitudes near the paper's.

/// Solidity-overhead steps for extracting one token from calldata, memory
/// staging, and `abi.encodePacked` reconstruction of the base payload
/// (`type ‖ expire ‖ index ‖ origin ‖ this`).
pub const VERIFY_BASE_STEPS: u64 = 104_800;

/// Additional steps for method tokens: `msg.sig` extraction and its
/// concatenation into the payload.
pub const METHOD_EXTRA_STEPS: u64 = 6_600;

/// Per-byte steps for argument tokens: the paper's prototype processes
/// `argName`/`argValue` as Solidity strings and re-hashes the full
/// `msg.data`, which its Table II prices at ≈216k gas for its benchmark
/// method; normalized per payload byte.
pub const ARG_PER_PAYLOAD_BYTE_STEPS: u64 = 3_170;

/// Steps for parsing one entry of a multi-token array (§IV-D). Every frame
/// on an n-deep chain scans the full n-entry array, so the transaction pays
/// ≈ `n² × PARSE_PER_ENTRY_STEPS`; calibrated against Table III's Parse
/// column (≈17k at n = 2).
pub const PARSE_PER_ENTRY_STEPS: u64 = 4_100;

/// Bitmap bookkeeping steps beyond raw storage ops (branching, pointer
/// arithmetic, bit masking in Solidity).
pub const BITMAP_OVERHEAD_STEPS: u64 = 6_900;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_recovers_table2_verify_ordering() {
        // With the chain primitives added (ecrecover 3000 + sload 200 +
        // keccak ≈ 50), the calibrated constants must keep the paper's
        // strict ordering and rough magnitudes.
        let primitives = 3_000 + 200 + 50;
        let super_v = VERIFY_BASE_STEPS + primitives;
        let method_v = super_v + METHOD_EXTRA_STEPS;
        // The paper's benchmark method carries a ~68-byte payload.
        let argument_v = method_v + ARG_PER_PAYLOAD_BYTE_STEPS * 68;
        assert!(super_v < method_v && method_v < argument_v);
        assert!((100_000..120_000).contains(&super_v), "{super_v}");
        assert!((105_000..125_000).contains(&method_v), "{method_v}");
        assert!((300_000..360_000).contains(&argument_v), "{argument_v}");
    }
}
