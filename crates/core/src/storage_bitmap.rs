//! The on-chain, gas-charged realization of the Alg. 2 bitmap.
//!
//! State lives in the shielded contract's storage (see [`crate::layout`]):
//! one packed metadata word (`start`, `startPtr`, `n`), one epoch word, and
//! `⌈n/256⌉` bit words keyed by `(epoch, word_index)`. A full window reset
//! bumps the epoch instead of clearing `O(n)` words — every word of the new
//! epoch reads as zero, at the cost of leaking the old epoch's slots
//! (acceptable: resets only happen on an `n`-sized index jump, which a
//! correctly sized bitmap never sees in normal operation).
//!
//! Transitions are semantically identical to [`crate::bitmap::BitmapState`];
//! a property test in the crate's test suite drives both with the same
//! index sequences and asserts verdict-for-verdict equality.

use smacs_chain::{CallContext, VmError};

use crate::bitmap::BitmapVerdict;
use crate::costs::BITMAP_OVERHEAD_STEPS;
use crate::layout;

/// Handle for operating the bitmap of the currently executing contract.
pub struct StorageBitmap;

impl StorageBitmap {
    /// Initialize an `n_bits` bitmap in the executing contract's storage.
    /// Called from the shield's constructor: writes the metadata word, the
    /// epoch word, and — mirroring the paper's deployment measurement
    /// (Table IV) — pre-touches every bit word so the deployment
    /// transaction pays the full storage cost up front.
    pub fn init(ctx: &mut CallContext<'_, '_>, n_bits: u64) -> Result<(), VmError> {
        assert!(n_bits > 0, "bitmap must have at least one bit");
        ctx.sstore(
            layout::bitmap_meta_slot(),
            layout::pack_bitmap_meta(0, 0, n_bits),
        )?;
        ctx.sstore_u256(layout::bitmap_epoch_slot(), smacs_primitives::U256::ONE)?;
        // Pre-allocate: write a sentinel into every word slot. The sentinel
        // lives in epoch 0 keyed differently? No — the *live* epoch is 1 and
        // its words must read zero; the pre-touch charges deployment gas the
        // way the paper's prototype pays it, using epoch 0 slots.
        for w in 0..layout::bitmap_word_count(n_bits) {
            ctx.sstore_u256(layout::bitmap_word_slot(0, w), smacs_primitives::U256::ONE)?;
        }
        Ok(())
    }

    /// Whether a bitmap has been initialized for this contract.
    pub fn is_initialized(ctx: &mut CallContext<'_, '_>) -> Result<bool, VmError> {
        let meta = ctx.sload(layout::bitmap_meta_slot())?;
        let (_, _, n) = layout::unpack_bitmap_meta(meta);
        Ok(n > 0)
    }

    /// Present one-time index `i`: the on-chain Alg. 2 update. Storage
    /// reads/writes and bookkeeping are gas-charged through `ctx`.
    pub fn try_use(ctx: &mut CallContext<'_, '_>, i: u128) -> Result<BitmapVerdict, VmError> {
        ctx.charge_compute(BITMAP_OVERHEAD_STEPS)?;
        let meta = ctx.sload(layout::bitmap_meta_slot())?;
        let (start, start_ptr, n_bits) = layout::unpack_bitmap_meta(meta);
        if n_bits == 0 {
            return ctx.revert("one-time token but no bitmap allocated");
        }
        let n = n_bits as u128;
        let end = start + n - 1;

        if i < start {
            return Ok(BitmapVerdict::RejectedStale);
        }
        if i <= end {
            // In-window: test and set the bit.
            let epoch = ctx.sload_u256(layout::bitmap_epoch_slot())?.low_u64();
            let pos = ((start_ptr as u128 + (i - start)) % n) as u64;
            let (word_idx, bit) = (pos / 256, (pos % 256) as u32);
            let slot = layout::bitmap_word_slot(epoch, word_idx);
            let word = ctx.sload(slot)?;
            if layout::get_bit(word, bit) {
                return Ok(BitmapVerdict::RejectedUsed);
            }
            ctx.sstore(slot, layout::set_bit(word, bit))?;
            return Ok(BitmapVerdict::Accepted);
        }
        if i <= end + n {
            // Minimal slide by d = i − end (see crate::bitmap for why the
            // displacement must be minimal).
            let d = (i - end) as u64;
            let new_start_ptr = (start_ptr + d) % n_bits;
            let new_start = i - n + 1;
            ctx.sstore(
                layout::bitmap_meta_slot(),
                layout::pack_bitmap_meta(new_start, new_start_ptr, n_bits),
            )?;
            let epoch = ctx.sload_u256(layout::bitmap_epoch_slot())?.low_u64();
            let end_pos = ((new_start_ptr as u128 + n - 1) % n) as u64;
            let (word_idx, bit) = (end_pos / 256, (end_pos % 256) as u32);
            let slot = layout::bitmap_word_slot(epoch, word_idx);
            let word = ctx.sload(slot)?;
            ctx.sstore(slot, layout::set_bit(word, bit))?;
            return Ok(BitmapVerdict::Accepted);
        }

        // Full reset: bump the epoch (all words of the new epoch read
        // zero), rebase the window at i, and mark i used.
        let epoch = ctx.sload_u256(layout::bitmap_epoch_slot())?.low_u64();
        ctx.sstore_u256(
            layout::bitmap_epoch_slot(),
            smacs_primitives::U256::from_u64(epoch + 1),
        )?;
        ctx.sstore(
            layout::bitmap_meta_slot(),
            layout::pack_bitmap_meta(i, 0, n_bits),
        )?;
        let slot = layout::bitmap_word_slot(epoch + 1, 0);
        let word = ctx.sload(slot)?;
        ctx.sstore(slot, layout::set_bit(word, 0))?;
        Ok(BitmapVerdict::Accepted)
    }
}
