//! The SMACS shield: wrap any contract so that *every* externally callable
//! method verifies a token before its body executes.
//!
//! This is the runtime counterpart of the paper's Fig. 4 source
//! transformation: where the Solidity tool adds a `token` argument and an
//! `assert(verify(token))` prologue to each public/external method, the
//! shield interposes on the message-call boundary. Internal behaviour is
//! untouched — a wrapped contract's own nested logic (the `_h()` split in
//! Fig. 4) is plain Rust control flow and never re-verifies, exactly as the
//! transformed contract's `internal` methods don't.

use smacs_chain::{CallContext, Contract, VmError};
use smacs_primitives::{Address, Bytes};
use std::sync::Arc;

use crate::layout;
use crate::storage_bitmap::StorageBitmap;
use crate::verify::verify_incoming;

/// A SMACS-enabled contract: token verification in front of `inner`.
pub struct SmacsShield {
    inner: Arc<dyn Contract>,
    ts_address: Address,
    bitmap_bits: u64,
}

impl SmacsShield {
    /// Shield `inner`, trusting tokens signed by the key behind
    /// `ts_address` (the address form of `pk_TS`). `bitmap_bits` sizes the
    /// one-time bitmap (§IV-C: `token_lifetime × max_tx_per_second`); pass
    /// 0 to disable one-time tokens entirely.
    pub fn new(inner: Arc<dyn Contract>, ts_address: Address, bitmap_bits: u64) -> Self {
        SmacsShield {
            inner,
            ts_address,
            bitmap_bits,
        }
    }

    /// The wrapped logic.
    pub fn inner(&self) -> &Arc<dyn Contract> {
        &self.inner
    }

    /// The trusted TS address.
    pub fn ts_address(&self) -> Address {
        self.ts_address
    }
}

impl Contract for SmacsShield {
    fn name(&self) -> &'static str {
        // The shield is transparent in diagnostics: it reports the inner
        // contract's name with no marker, as the paper's transformed
        // contracts keep their names.
        self.inner.name()
    }

    fn code_len(&self) -> usize {
        // The paper stresses that SMACS keeps contracts simple: the only
        // code overhead is parsing + one signature verification. Model it
        // as a fixed increment over the legacy contract's code size.
        self.inner.code_len() + 1_536
    }

    fn constructor(&self, ctx: &mut CallContext<'_, '_>) -> Result<(), VmError> {
        // Preload pk_TS (§III-C) …
        ctx.sstore(
            layout::ts_address_slot(),
            layout::address_to_word(self.ts_address),
        )?;
        // … allocate the one-time bitmap (Table IV's one-time deployment
        // cost) …
        if self.bitmap_bits > 0 {
            StorageBitmap::init(ctx, self.bitmap_bits)?;
        }
        // … then run the wrapped contract's own constructor.
        self.inner.constructor(ctx)
    }

    fn execute(&self, ctx: &mut CallContext<'_, '_>) -> Result<Bytes, VmError> {
        // assert(verify(token)) before every method body (Fig. 4).
        verify_incoming(ctx)?;
        self.inner.execute(ctx)
    }

    fn fallback(&self, ctx: &mut CallContext<'_, '_>) -> Result<(), VmError> {
        // Plain value transfers carry no selector and no token array; the
        // paper's transformation protects public *methods*. Delegate so
        // deposits keep working; a contract wanting stricter policy can
        // reject in its own fallback.
        self.inner.fallback(ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Nop;
    impl Contract for Nop {
        fn name(&self) -> &'static str {
            "Nop"
        }
        fn code_len(&self) -> usize {
            2_000
        }
        fn execute(&self, _ctx: &mut CallContext<'_, '_>) -> Result<Bytes, VmError> {
            Ok(Bytes::new())
        }
    }

    #[test]
    fn shield_reports_inner_identity_with_code_overhead() {
        let shield = SmacsShield::new(Arc::new(Nop), Address::from_low_u64(1), 0);
        assert_eq!(shield.name(), "Nop");
        assert_eq!(shield.code_len(), 2_000 + 1_536);
        assert_eq!(shield.ts_address(), Address::from_low_u64(1));
    }
}
