//! # smacs-core — the SMACS framework's on-chain side and SDKs
//!
//! This crate implements the paper's primary contribution:
//!
//! - **Alg. 1 — contract-side token verification** ([`verify`]): extract the
//!   token from the transaction, check expiry and (for one-time tokens)
//!   reuse, reconstruct the signing payload from the EVM context objects,
//!   and verify the TS signature with `ecrecover`;
//! - **Alg. 2 — the cyclic one-time bitmap** ([`bitmap`] for the pure state
//!   machine with `seek()`, [`storage_bitmap`] for the gas-charged on-chain
//!   version), including the `token_lifetime × max_tx_per_second` sizing
//!   rule of §IV-C;
//! - the **contract shield** ([`shield`]): a wrapper that turns any
//!   [`smacs_chain::Contract`] into a SMACS-enabled contract whose every
//!   externally callable method verifies a token before its body runs —
//!   the runtime counterpart of the Fig. 4 source transformation;
//! - the **client SDK** ([`client`]): build token-bearing calldata and
//!   transactions, including multi-token arrays for call chains (§IV-D);
//! - the **token fetcher** ([`fetcher`]): client-side token acquisition
//!   over any [`smacs_ts::TsApi`] transport, with per-`(contract, type,
//!   method)` caching and refresh-before-expiry so a busy client hits the
//!   TS once per token lifetime rather than once per transaction;
//! - the **owner SDK** ([`owner`]): TS key generation, bitmap sizing, and
//!   one-call deployment of shielded contracts.
//!
//! Gas calibration constants for matching the paper's measured magnitudes
//! are documented in [`costs`].
//!
//! Two deliberate deviations from the paper's pseudocode, both noted in
//! DESIGN.md: Alg. 1's reuse condition (`not reused(...)`) is a typo — the
//! correct (and implemented) semantics reject a token *iff it has been used*;
//! and the bitmap's "reset" branch must mark the triggering index as used,
//! which the paper's Alg. 2 omits.

pub mod bitmap;
pub mod client;
pub mod costs;
pub mod fetcher;
pub mod layout;
pub mod owner;
pub mod shield;
pub mod storage_bitmap;
pub mod verify;

pub use bitmap::{bitmap_bits_for, BitmapState};
pub use client::{build_call_data, build_chain_call_data, ClientWallet, WalletError};
pub use fetcher::TokenFetcher;
pub use owner::{OwnerToolkit, ShieldParams};
pub use shield::SmacsShield;
pub use storage_bitmap::StorageBitmap;
pub use verify::{forward_call, verify_incoming, VerifyOutcome};
