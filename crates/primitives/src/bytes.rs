//! A cheaply cloneable, immutable byte buffer with hex-oriented formatting.
//!
//! `Bytes` is reference-counted: cloning is an `Arc` refcount bump, never a
//! buffer copy. This is what makes the execution hot path zero-copy — the
//! same calldata buffer is shared by the transaction, every nested call
//! frame's `msg.data`, the receipt, and the trace, instead of being
//! re-cloned per frame as the previous `Vec<u8>`-backed version did.

use std::fmt;
use std::ops::Deref;
use std::sync::{Arc, OnceLock};

/// Immutable shared byte buffer used for calldata, return data, and token
/// wire images. Cloning is O(1).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Bytes(Arc<Vec<u8>>);

fn empty() -> &'static Arc<Vec<u8>> {
    static EMPTY: OnceLock<Arc<Vec<u8>>> = OnceLock::new();
    EMPTY.get_or_init(|| Arc::new(Vec::new()))
}

impl Bytes {
    /// The empty buffer (shared, allocation-free).
    pub fn new() -> Self {
        Bytes(Arc::clone(empty()))
    }

    /// Wrap an owned vector without copying.
    pub fn from_vec(v: Vec<u8>) -> Self {
        if v.is_empty() {
            return Bytes::new();
        }
        Bytes(Arc::new(v))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// View as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.0
    }

    /// Consume into a vector. Free when this is the only handle; copies
    /// otherwise.
    pub fn into_vec(self) -> Vec<u8> {
        Arc::try_unwrap(self.0).unwrap_or_else(|shared| (*shared).clone())
    }

    /// Render as a lowercase `0x…` hex string.
    pub fn to_hex(&self) -> String {
        format!("0x{}", hex::encode(self.as_slice()))
    }

    /// Parse from a hex string with optional `0x` prefix.
    pub fn from_hex(s: &str) -> Option<Self> {
        let s = s.strip_prefix("0x").unwrap_or(s);
        hex::decode(s).ok().map(Bytes::from_vec)
    }

    /// Count of zero / non-zero bytes — the split the Ethereum calldata gas
    /// rule charges differently (4 gas per zero byte, 68 per non-zero).
    pub fn zero_nonzero_counts(&self) -> (usize, usize) {
        let zeros = self.0.iter().filter(|&&b| b == 0).count();
        (zeros, self.0.len() - zeros)
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes::from_vec(v)
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::from_vec(v.to_vec())
    }
}

impl<const N: usize> From<[u8; N]> for Bytes {
    fn from(v: [u8; N]) -> Self {
        Bytes::from_vec(v.to_vec())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from_vec(iter.into_iter().collect())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes({})", self.to_hex())
    }
}

impl fmt::Display for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_round_trip() {
        let b = Bytes::from(vec![0xde, 0xad, 0xbe, 0xef]);
        assert_eq!(b.to_hex(), "0xdeadbeef");
        assert_eq!(Bytes::from_hex("0xdeadbeef"), Some(b));
        assert_eq!(Bytes::from_hex("nothex"), None);
    }

    #[test]
    fn zero_nonzero_split() {
        let b = Bytes::from(vec![0, 1, 0, 2, 3]);
        assert_eq!(b.zero_nonzero_counts(), (2, 3));
        assert_eq!(Bytes::new().zero_nonzero_counts(), (0, 0));
    }

    #[test]
    fn deref_gives_slice_ops() {
        let b = Bytes::from(vec![1, 2, 3]);
        assert_eq!(&b[1..], &[2, 3]);
        assert_eq!(b.len(), 3);
    }

    #[test]
    fn clone_shares_the_buffer() {
        let a = Bytes::from(vec![9u8; 64]);
        let b = a.clone();
        // Same allocation, not a copy.
        assert!(std::ptr::eq(a.as_slice().as_ptr(), b.as_slice().as_ptr()));
    }

    #[test]
    fn into_vec_round_trips() {
        let v = vec![5u8, 6, 7];
        let b = Bytes::from(v.clone());
        let shared = b.clone();
        assert_eq!(shared.into_vec(), v); // copies (b still alive)
        assert_eq!(b.into_vec(), v); // reclaims in place
    }

    #[test]
    fn empty_is_shared() {
        let a = Bytes::new();
        let b = Bytes::default();
        assert!(std::ptr::eq(Arc::as_ptr(&a.0), Arc::as_ptr(&b.0)));
    }
}
