//! A thin owned byte-buffer newtype with hex-oriented formatting.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::Deref;

/// Owned byte buffer used for calldata, return data, and token wire images.
#[derive(Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Bytes(pub Vec<u8>);

impl Bytes {
    /// The empty buffer.
    pub fn new() -> Self {
        Bytes(Vec::new())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// View as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.0
    }

    /// Consume into the inner vector.
    pub fn into_vec(self) -> Vec<u8> {
        self.0
    }

    /// Render as a lowercase `0x…` hex string.
    pub fn to_hex(&self) -> String {
        format!("0x{}", hex::encode(&self.0))
    }

    /// Parse from a hex string with optional `0x` prefix.
    pub fn from_hex(s: &str) -> Option<Self> {
        let s = s.strip_prefix("0x").unwrap_or(s);
        hex::decode(s).ok().map(Bytes)
    }

    /// Count of zero / non-zero bytes — the split the Ethereum calldata gas
    /// rule charges differently (4 gas per zero byte, 68 per non-zero).
    pub fn zero_nonzero_counts(&self) -> (usize, usize) {
        let zeros = self.0.iter().filter(|&&b| b == 0).count();
        (zeros, self.0.len() - zeros)
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(v)
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes(v.to_vec())
    }
}

impl<const N: usize> From<[u8; N]> for Bytes {
    fn from(v: [u8; N]) -> Self {
        Bytes(v.to_vec())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes({})", self.to_hex())
    }
}

impl fmt::Display for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_round_trip() {
        let b = Bytes(vec![0xde, 0xad, 0xbe, 0xef]);
        assert_eq!(b.to_hex(), "0xdeadbeef");
        assert_eq!(Bytes::from_hex("0xdeadbeef"), Some(b));
        assert_eq!(Bytes::from_hex("nothex"), None);
    }

    #[test]
    fn zero_nonzero_split() {
        let b = Bytes(vec![0, 1, 0, 2, 3]);
        assert_eq!(b.zero_nonzero_counts(), (2, 3));
        assert_eq!(Bytes::new().zero_nonzero_counts(), (0, 0));
    }

    #[test]
    fn deref_gives_slice_ops() {
        let b = Bytes(vec![1, 2, 3]);
        assert_eq!(&b[1..], &[2, 3]);
        assert_eq!(b.len(), 3);
    }
}
