//! A small JSON value tree, parser, and printer.
//!
//! The build environment has no access to serde/serde_json, so the workspace
//! carries its own JSON layer: [`Json`] is the value tree, [`ToJson`] /
//! [`FromJson`] are the codec traits the TS wire types implement by hand.
//! Object key order is preserved (insertion order), integers are `i128`
//! (no floats — nothing in the SMACS protocol uses them), and strings
//! support the full escape set including `\uXXXX` surrogate pairs.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer (the protocol uses no floats).
    Int(i128),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered.
    Obj(Vec<(String, Json)>),
}

/// Parse or schema failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError(pub String);

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for JsonError {}

fn err<T>(msg: impl Into<String>) -> Result<T, JsonError> {
    Err(JsonError(msg.into()))
}

impl Json {
    // ---- accessors ----

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is an integer.
    pub fn as_int(&self) -> Option<i128> {
        match self {
            Json::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// Object member lookup by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_obj()?
            .iter()
            .find_map(|(k, v)| (k == key).then_some(v))
    }

    /// Object member lookup that errors with the key name when missing —
    /// the common shape in `FromJson` impls.
    pub fn want(&self, key: &str) -> Result<&Json, JsonError> {
        self.get(key)
            .ok_or_else(|| JsonError(format!("missing field `{key}`")))
    }

    // ---- printing ----

    /// Compact rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with 2-space indentation.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        let (nl, pad, pad_close, colon) = match indent {
            Some(step) => (
                "\n",
                " ".repeat(step * (level + 1)),
                " ".repeat(step * level),
                ": ",
            ),
            None => ("", String::new(), String::new(), ":"),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(v) => out.push_str(&v.to_string()),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad);
                    item.write(out, indent, level + 1);
                }
                out.push_str(nl);
                out.push_str(&pad_close);
                out.push(']');
            }
            Json::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad);
                    write_escaped(out, key);
                    out.push_str(colon);
                    value.write(out, indent, level + 1);
                }
                out.push_str(nl);
                out.push_str(&pad_close);
                out.push('}');
            }
        }
    }

    // ---- parsing ----

    /// Parse a complete JSON document.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut parser = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        parser.skip_ws();
        let value = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return err(format!("trailing characters at offset {}", parser.pos));
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            err(format!("expected {:?} at offset {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            err(format!("invalid literal at offset {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(other) => err(format!(
                "unexpected character {:?} at offset {}",
                other as char, self.pos
            )),
            None => err("unexpected end of input"),
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.') | Some(b'e') | Some(b'E')) {
            return err(format!(
                "floating-point numbers are not supported (offset {start})"
            ));
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits and minus are ASCII");
        text.parse::<i128>()
            .map(Json::Int)
            .map_err(|_| JsonError(format!("invalid number at offset {start}")))
    }

    fn hex4(&mut self) -> Result<u16, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return err("truncated \\u escape");
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| JsonError("non-ASCII \\u escape".into()))?;
        let v = u16::from_str_radix(text, 16)
            .map_err(|_| JsonError(format!("bad \\u escape at offset {}", self.pos)))?;
        self.pos += 4;
        Ok(v)
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast-forward over the plain span.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| JsonError("invalid UTF-8 in string".into()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if self.peek() != Some(b'\\') {
                                    return err("unpaired surrogate");
                                }
                                self.pos += 1;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return err("invalid low surrogate");
                                }
                                let code =
                                    0x10000 + ((hi as u32 - 0xD800) << 10) + (lo as u32 - 0xDC00);
                                char::from_u32(code)
                                    .ok_or(JsonError("invalid surrogate pair".into()))?
                            } else {
                                char::from_u32(hi as u32)
                                    .ok_or(JsonError("invalid \\u escape".into()))?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return err(format!("bad escape at offset {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => return err("control character in string"),
                None => return err("unterminated string"),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }
}

/// Types that render to JSON.
pub trait ToJson {
    /// Build the JSON value.
    fn to_json(&self) -> Json;
}

/// Types that parse from JSON.
pub trait FromJson: Sized {
    /// Parse from a JSON value.
    fn from_json(json: &Json) -> Result<Self, JsonError>;

    /// Parse the member `key` of object `obj`. The default requires the
    /// member to be present; `Option<T>` overrides it so that an absent
    /// member reads as `None` (matching what serde's `Option` derive
    /// accepted). [`json_codec!`]-generated codecs go through this hook.
    fn from_json_field(obj: &Json, key: &str) -> Result<Self, JsonError> {
        Self::from_json(obj.want(key)?)
    }
}

/// Serialize to a compact JSON string.
pub fn to_string<T: ToJson>(value: &T) -> String {
    value.to_json().render()
}

/// Serialize to a pretty JSON string.
pub fn to_string_pretty<T: ToJson>(value: &T) -> String {
    value.to_json().render_pretty()
}

/// Parse a JSON string into `T`.
pub fn from_str<T: FromJson>(input: &str) -> Result<T, JsonError> {
    T::from_json(&Json::parse(input)?)
}

// ---- blanket/basic impls ----

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl FromJson for Json {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(json.clone())
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        json.as_bool().ok_or(JsonError("expected bool".into()))
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        json.as_str()
            .map(str::to_string)
            .ok_or(JsonError("expected string".into()))
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

macro_rules! int_to_json {
    ($($t:ty),+ $(,)?) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Int(*self as i128)
            }
        }
        impl FromJson for $t {
            fn from_json(json: &Json) -> Result<Self, JsonError> {
                let v = json.as_int().ok_or(JsonError("expected integer".into()))?;
                <$t>::try_from(v).map_err(|_| JsonError("integer out of range".into()))
            }
        }
    )+};
}

int_to_json!(u8, u16, u32, u64, usize, i8, i16, i32, i64, i128);

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        match json {
            Json::Null => Ok(None),
            other => Ok(Some(T::from_json(other)?)),
        }
    }

    fn from_json_field(obj: &Json, key: &str) -> Result<Self, JsonError> {
        match obj.get(key) {
            None | Some(Json::Null) => Ok(None),
            Some(v) => Ok(Some(T::from_json(v)?)),
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        json.as_arr()
            .ok_or(JsonError("expected array".into()))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl<V: ToJson> ToJson for BTreeMap<String, V> {
    fn to_json(&self) -> Json {
        Json::Obj(self.iter().map(|(k, v)| (k.clone(), v.to_json())).collect())
    }
}

impl<V: FromJson> FromJson for BTreeMap<String, V> {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        json.as_obj()
            .ok_or(JsonError("expected object".into()))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_json(v)?)))
            .collect()
    }
}

impl ToJson for BTreeSet<String> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(|s| Json::Str(s.clone())).collect())
    }
}

impl FromJson for BTreeSet<String> {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        json.as_arr()
            .ok_or(JsonError("expected array".into()))?
            .iter()
            .map(|v| {
                v.as_str()
                    .map(str::to_string)
                    .ok_or(JsonError("expected string".into()))
            })
            .collect()
    }
}

/// Derive-style codec generator: defines a plain struct and hand-rolls the
/// [`ToJson`]/[`FromJson`] impls serde would have derived — one object
/// member per field, named after the field.
///
/// Attributes (doc comments, `#[derive(...)]`) pass through to the struct;
/// `Option<T>` fields tolerate absent members on parse (via
/// [`FromJson::from_json_field`]) and render as `null` when `None`.
///
/// A field may be suffixed `= default`: on parse an absent member becomes
/// `Default::default()` instead of an error (rendering still always emits
/// the member). Use it for fields added after serialized data already
/// exists in the wild — old JSON keeps decoding.
///
/// ```
/// use smacs_primitives::json_codec;
///
/// json_codec! {
///     /// A labelled point.
///     #[derive(Clone, Debug, PartialEq)]
///     pub struct Pin {
///         /// Display label.
///         pub label: String,
///         pub x: i64,
///         pub note: Option<String>,
///         /// Added in v2: absent in old JSON, decodes to empty.
///         pub tags: Vec<String> = default,
///     }
/// }
///
/// let pin = Pin { label: "a".into(), x: 3, note: None, tags: vec!["t".into()] };
/// let text = smacs_primitives::json::to_string(&pin);
/// let back: Pin = smacs_primitives::json::from_str(&text).unwrap();
/// assert_eq!(back, pin);
/// // Absent Option members parse as None; absent `= default` members
/// // parse as Default::default().
/// let sparse: Pin = smacs_primitives::json::from_str(r#"{"label":"b","x":1}"#).unwrap();
/// assert_eq!(sparse.note, None);
/// assert_eq!(sparse.tags, Vec::<String>::new());
/// ```
#[macro_export]
macro_rules! json_codec {
    ($(#[$meta:meta])* $vis:vis struct $name:ident {
        $($(#[$fmeta:meta])* $fvis:vis $field:ident : $ty:ty $(= $marker:ident)?),* $(,)?
    }) => {
        $(#[$meta])*
        $vis struct $name {
            $($(#[$fmeta])* $fvis $field: $ty,)*
        }

        impl $crate::json::ToJson for $name {
            fn to_json(&self) -> $crate::json::Json {
                $crate::json::Json::Obj(vec![
                    $((stringify!($field).into(), $crate::json::ToJson::to_json(&self.$field)),)*
                ])
            }
        }

        impl $crate::json::FromJson for $name {
            fn from_json(json: &$crate::json::Json) -> Result<Self, $crate::json::JsonError> {
                Ok($name {
                    $($field: $crate::json_codec!(@parse json, $field, $ty $(, $marker)?),)*
                })
            }
        }
    };
    // Plain field: delegate to from_json_field (Option-aware, else required).
    (@parse $json:ident, $field:ident, $ty:ty) => {
        <$ty as $crate::json::FromJson>::from_json_field($json, stringify!($field))?
    };
    // `= default` field: absent member decodes to Default::default().
    (@parse $json:ident, $field:ident, $ty:ty, default) => {
        match $json.get(stringify!($field)) {
            Some(value) => <$ty as $crate::json::FromJson>::from_json(value)?,
            None => <$ty as ::core::default::Default>::default(),
        }
    };
}

impl ToJson for crate::Address {
    fn to_json(&self) -> Json {
        Json::Str(self.to_hex())
    }
}

impl FromJson for crate::Address {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        let s = json.as_str().ok_or(JsonError("expected address".into()))?;
        crate::Address::from_hex(s).ok_or(JsonError(format!("bad address {s:?}")))
    }
}

impl ToJson for crate::H256 {
    fn to_json(&self) -> Json {
        Json::Str(self.to_hex())
    }
}

impl FromJson for crate::H256 {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        let s = json.as_str().ok_or(JsonError("expected hash".into()))?;
        crate::H256::from_hex(s).ok_or(JsonError(format!("bad hash {s:?}")))
    }
}

impl ToJson for crate::U256 {
    fn to_json(&self) -> Json {
        Json::Str(self.to_dec_string())
    }
}

impl FromJson for crate::U256 {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        let s = json
            .as_str()
            .ok_or(JsonError("expected decimal string".into()))?;
        crate::U256::from_dec_str(s).ok_or(JsonError(format!("bad u256 {s:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for text in [
            "null",
            "true",
            "false",
            "0",
            "-17",
            "170141183460469231731687303715884105727",
        ] {
            assert_eq!(Json::parse(text).unwrap().render(), text);
        }
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = Json::Str("line\nquote\" back\\ tab\t unicode \u{1F600} nul\u{0}".into());
        let rendered = original.render();
        assert_eq!(Json::parse(&rendered).unwrap(), original);
    }

    #[test]
    fn surrogate_pair_parsing() {
        assert_eq!(
            Json::parse(r#""😀""#).unwrap(),
            Json::Str("\u{1F600}".into())
        );
        assert!(Json::parse(r#""\ud83d""#).is_err());
    }

    #[test]
    fn nested_structures() {
        let text = r#"{"a": [1, 2, {"b": null}], "c": {"d": "e"}, "empty": [], "eo": {}}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("c").unwrap().get("d").unwrap().as_str(), Some("e"));
        // Round trip through both renderings.
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
        assert_eq!(Json::parse(&v.render_pretty()).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        for text in [
            "{not json",
            "[1,",
            "\"open",
            "{\"a\":}",
            "1.5",
            "1e9",
            "[] []",
            "",
        ] {
            assert!(Json::parse(text).is_err(), "accepted {text:?}");
        }
    }

    #[test]
    fn preserves_key_order() {
        let v = Json::parse(r#"{"z": 1, "a": 2}"#).unwrap();
        assert_eq!(v.render(), r#"{"z":1,"a":2}"#);
    }

    #[test]
    fn json_codec_macro_round_trips_and_tolerates_absent_options() {
        crate::json_codec! {
            #[derive(Clone, Debug, PartialEq)]
            struct Sample {
                name: String,
                count: u32,
                tag: Option<String>,
                items: Vec<u64>,
            }
        }
        let full = Sample {
            name: "x".into(),
            count: 7,
            tag: Some("t".into()),
            items: vec![1, 2],
        };
        let text = super::to_string(&full);
        assert_eq!(super::from_str::<Sample>(&text).unwrap(), full);
        // Absent option → None; absent required field → error naming it.
        let sparse: Sample = super::from_str(r#"{"name":"y","count":1,"items":[]}"#).unwrap();
        assert_eq!(sparse.tag, None);
        let missing = super::from_str::<Sample>(r#"{"name":"z"}"#).unwrap_err();
        assert!(missing.0.contains("count"), "{missing}");
    }

    #[test]
    fn primitive_codecs() {
        let addr = crate::Address::from_low_u64(0xabcd);
        assert_eq!(crate::Address::from_json(&addr.to_json()).unwrap(), addr);
        let v = crate::U256::from_u64(12345);
        assert_eq!(crate::U256::from_json(&v.to_json()).unwrap(), v);
        let xs: Vec<u64> = vec![1, 2, 3];
        assert_eq!(Vec::<u64>::from_json(&xs.to_json()).unwrap(), xs);
        let none: Option<String> = None;
        assert_eq!(Option::<String>::from_json(&none.to_json()).unwrap(), none);
    }
}
