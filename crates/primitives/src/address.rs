//! Ethereum-style 20-byte account addresses.

use std::fmt;

/// A 20-byte account address. Both externally owned accounts and contract
/// instances are uniformly identified by addresses (paper §II-C).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Address(pub [u8; 20]);

impl Address {
    /// The zero address (used as the "no address" sentinel, e.g. for
    /// contract-creation transactions).
    pub const ZERO: Address = Address([0u8; 20]);

    /// View as a byte slice.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Construct from a slice; `None` unless exactly 20 bytes.
    pub fn from_slice(slice: &[u8]) -> Option<Self> {
        if slice.len() != 20 {
            return None;
        }
        let mut buf = [0u8; 20];
        buf.copy_from_slice(slice);
        Some(Address(buf))
    }

    /// Derive a deterministic address from a low-entropy integer — handy in
    /// tests and synthetic workloads.
    pub fn from_low_u64(v: u64) -> Self {
        let mut buf = [0u8; 20];
        buf[12..].copy_from_slice(&v.to_be_bytes());
        Address(buf)
    }

    /// True iff this is the zero address.
    pub fn is_zero(&self) -> bool {
        self.0 == [0u8; 20]
    }

    /// Render as a lowercase `0x…` hex string.
    pub fn to_hex(&self) -> String {
        format!("0x{}", hex::encode(self.0))
    }

    /// Parse from a hex string with optional `0x` prefix.
    pub fn from_hex(s: &str) -> Option<Self> {
        let s = s.strip_prefix("0x").unwrap_or(s);
        let bytes = hex::decode(s).ok()?;
        Self::from_slice(&bytes)
    }
}

impl fmt::Debug for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Address({})", self.to_hex())
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl From<[u8; 20]> for Address {
    fn from(bytes: [u8; 20]) -> Self {
        Address(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_round_trip() {
        let a = Address([0x42; 20]);
        assert_eq!(Address::from_hex(&a.to_hex()), Some(a));
        assert_eq!(a.to_hex(), format!("0x{}", "42".repeat(20)));
    }

    #[test]
    fn from_slice_validates_length() {
        assert_eq!(Address::from_slice(&[0u8; 19]), None);
        assert_eq!(Address::from_slice(&[0u8; 21]), None);
        assert!(Address::from_slice(&[0u8; 20]).is_some());
    }

    #[test]
    fn low_u64_is_injective_for_small_values() {
        assert_ne!(Address::from_low_u64(1), Address::from_low_u64(2));
        assert!(Address::from_low_u64(0).is_zero());
    }
}
