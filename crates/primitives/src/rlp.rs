//! Recursive Length Prefix (RLP) encoding and decoding.
//!
//! RLP is the serialization Ethereum uses for transactions; the chain
//! simulator hashes RLP-encoded transactions to form transaction ids, exactly
//! as the paper's prototype environment (geth) does.

use crate::{Address, Bytes, U256};

/// An RLP item: either a byte string or a list of items.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Item {
    /// A byte string.
    Bytes(Vec<u8>),
    /// A list of nested items.
    List(Vec<Item>),
}

/// Errors from [`decode`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DecodeError {
    /// Input ended before the announced length.
    UnexpectedEof,
    /// A length prefix used a non-minimal encoding.
    NonCanonical,
    /// Extra bytes remained after the top-level item.
    TrailingBytes,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::UnexpectedEof => write!(f, "rlp: unexpected end of input"),
            DecodeError::NonCanonical => write!(f, "rlp: non-canonical length encoding"),
            DecodeError::TrailingBytes => write!(f, "rlp: trailing bytes after item"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Encode an item to its RLP byte representation.
pub fn encode(item: &Item) -> Vec<u8> {
    match item {
        Item::Bytes(bytes) => encode_bytes(bytes),
        Item::List(items) => {
            let payload: Vec<u8> = items.iter().flat_map(encode).collect();
            let mut out = length_prefix(payload.len(), 0xc0);
            out.extend_from_slice(&payload);
            out
        }
    }
}

fn encode_bytes(bytes: &[u8]) -> Vec<u8> {
    if bytes.len() == 1 && bytes[0] < 0x80 {
        return vec![bytes[0]];
    }
    let mut out = length_prefix(bytes.len(), 0x80);
    out.extend_from_slice(bytes);
    out
}

fn length_prefix(len: usize, offset: u8) -> Vec<u8> {
    if len <= 55 {
        vec![offset + len as u8]
    } else {
        let len_bytes: Vec<u8> = len
            .to_be_bytes()
            .into_iter()
            .skip_while(|&b| b == 0)
            .collect();
        let mut out = vec![offset + 55 + len_bytes.len() as u8];
        out.extend_from_slice(&len_bytes);
        out
    }
}

/// Decode a single top-level RLP item, rejecting trailing garbage.
pub fn decode(input: &[u8]) -> Result<Item, DecodeError> {
    let (item, rest) = decode_partial(input)?;
    if !rest.is_empty() {
        return Err(DecodeError::TrailingBytes);
    }
    Ok(item)
}

fn decode_partial(input: &[u8]) -> Result<(Item, &[u8]), DecodeError> {
    let &first = input.first().ok_or(DecodeError::UnexpectedEof)?;
    match first {
        0x00..=0x7f => Ok((Item::Bytes(vec![first]), &input[1..])),
        0x80..=0xb7 => {
            let len = (first - 0x80) as usize;
            let payload = input.get(1..1 + len).ok_or(DecodeError::UnexpectedEof)?;
            if len == 1 && payload[0] < 0x80 {
                return Err(DecodeError::NonCanonical);
            }
            Ok((Item::Bytes(payload.to_vec()), &input[1 + len..]))
        }
        0xb8..=0xbf => {
            let len_len = (first - 0xb7) as usize;
            let (len, rest) = read_length(&input[1..], len_len)?;
            let payload = rest.get(..len).ok_or(DecodeError::UnexpectedEof)?;
            Ok((Item::Bytes(payload.to_vec()), &rest[len..]))
        }
        0xc0..=0xf7 => {
            let len = (first - 0xc0) as usize;
            let payload = input.get(1..1 + len).ok_or(DecodeError::UnexpectedEof)?;
            Ok((Item::List(decode_list(payload)?), &input[1 + len..]))
        }
        0xf8..=0xff => {
            let len_len = (first - 0xf7) as usize;
            let (len, rest) = read_length(&input[1..], len_len)?;
            let payload = rest.get(..len).ok_or(DecodeError::UnexpectedEof)?;
            Ok((Item::List(decode_list(payload)?), &rest[len..]))
        }
    }
}

fn read_length(input: &[u8], len_len: usize) -> Result<(usize, &[u8]), DecodeError> {
    let len_bytes = input.get(..len_len).ok_or(DecodeError::UnexpectedEof)?;
    if len_bytes.first() == Some(&0) {
        return Err(DecodeError::NonCanonical);
    }
    let mut len = 0usize;
    for &b in len_bytes {
        len = len.checked_mul(256).ok_or(DecodeError::NonCanonical)? + b as usize;
    }
    if len <= 55 {
        return Err(DecodeError::NonCanonical);
    }
    Ok((len, &input[len_len..]))
}

fn decode_list(mut payload: &[u8]) -> Result<Vec<Item>, DecodeError> {
    let mut items = Vec::new();
    while !payload.is_empty() {
        let (item, rest) = decode_partial(payload)?;
        items.push(item);
        payload = rest;
    }
    Ok(items)
}

/// Convenience conversions for composing [`Item`] lists.
pub trait ToRlp {
    /// Convert to an RLP item.
    fn to_rlp(&self) -> Item;
}

impl ToRlp for U256 {
    fn to_rlp(&self) -> Item {
        Item::Bytes(self.to_be_bytes_trimmed())
    }
}

impl ToRlp for u64 {
    fn to_rlp(&self) -> Item {
        U256::from_u64(*self).to_rlp()
    }
}

impl ToRlp for u128 {
    fn to_rlp(&self) -> Item {
        U256::from_u128(*self).to_rlp()
    }
}

impl ToRlp for Address {
    fn to_rlp(&self) -> Item {
        Item::Bytes(self.0.to_vec())
    }
}

impl ToRlp for Bytes {
    fn to_rlp(&self) -> Item {
        Item::Bytes(self.as_slice().to_vec())
    }
}

impl ToRlp for &[u8] {
    fn to_rlp(&self) -> Item {
        Item::Bytes(self.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    // Canonical vectors from the Ethereum wiki.
    #[test]
    fn known_vectors() {
        assert_eq!(
            encode(&Item::Bytes(b"dog".to_vec())),
            vec![0x83, b'd', b'o', b'g']
        );
        assert_eq!(
            encode(&Item::List(vec![
                Item::Bytes(b"cat".to_vec()),
                Item::Bytes(b"dog".to_vec())
            ])),
            vec![0xc8, 0x83, b'c', b'a', b't', 0x83, b'd', b'o', b'g']
        );
        assert_eq!(encode(&Item::Bytes(vec![])), vec![0x80]);
        assert_eq!(encode(&Item::Bytes(vec![0x00])), vec![0x00]);
        assert_eq!(encode(&Item::Bytes(vec![0x0f])), vec![0x0f]);
        assert_eq!(
            encode(&Item::Bytes(vec![0x04, 0x00])),
            vec![0x82, 0x04, 0x00]
        );
        assert_eq!(encode(&Item::List(vec![])), vec![0xc0]);
    }

    #[test]
    fn long_string() {
        let s = vec![b'a'; 56];
        let enc = encode(&Item::Bytes(s.clone()));
        assert_eq!(enc[0], 0xb8);
        assert_eq!(enc[1], 56);
        assert_eq!(&enc[2..], &s[..]);
        assert_eq!(decode(&enc).unwrap(), Item::Bytes(s));
    }

    #[test]
    fn nested_lists() {
        // [ [], [[]], [ [], [[]] ] ] — the canonical "set theoretic" vector.
        let item = Item::List(vec![
            Item::List(vec![]),
            Item::List(vec![Item::List(vec![])]),
            Item::List(vec![
                Item::List(vec![]),
                Item::List(vec![Item::List(vec![])]),
            ]),
        ]);
        let enc = encode(&item);
        assert_eq!(enc, vec![0xc7, 0xc0, 0xc1, 0xc0, 0xc3, 0xc0, 0xc1, 0xc0]);
        assert_eq!(decode(&enc).unwrap(), item);
    }

    #[test]
    fn rejects_noncanonical() {
        // 0x81 0x05 is a non-canonical encoding of the single byte 0x05.
        assert_eq!(decode(&[0x81, 0x05]), Err(DecodeError::NonCanonical));
        // Long-form length for a short payload.
        assert_eq!(decode(&[0xb8, 0x01, 0xff]), Err(DecodeError::NonCanonical));
    }

    #[test]
    fn rejects_truncation_and_trailing() {
        assert_eq!(decode(&[0x83, b'd', b'o']), Err(DecodeError::UnexpectedEof));
        assert_eq!(decode(&[0x80, 0x00]), Err(DecodeError::TrailingBytes));
        assert_eq!(decode(&[]), Err(DecodeError::UnexpectedEof));
    }

    #[test]
    fn u256_trimming() {
        assert_eq!(encode(&U256::ZERO.to_rlp()), vec![0x80]);
        assert_eq!(encode(&U256::from_u64(15).to_rlp()), vec![0x0f]);
        assert_eq!(
            encode(&U256::from_u64(1024).to_rlp()),
            vec![0x82, 0x04, 0x00]
        );
    }

    fn arb_item() -> impl Strategy<Value = Item> {
        let leaf = prop::collection::vec(any::<u8>(), 0..64).prop_map(Item::Bytes);
        leaf.prop_recursive(3, 32, 4, |inner| {
            prop::collection::vec(inner, 0..4).prop_map(Item::List)
        })
    }

    proptest! {
        #[test]
        fn prop_round_trip(item in arb_item()) {
            let enc = encode(&item);
            prop_assert_eq!(decode(&enc).unwrap(), item);
        }

        #[test]
        fn prop_decode_never_panics(data in prop::collection::vec(any::<u8>(), 0..256)) {
            let _ = decode(&data);
        }
    }
}
