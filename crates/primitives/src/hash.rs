//! 32-byte hash values (keccak digests, storage keys, transaction ids).

use std::fmt;

use crate::U256;

/// A 32-byte hash, as produced by keccak256 and used for storage keys,
/// transaction hashes, and block hashes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct H256(pub [u8; 32]);

impl H256 {
    /// The all-zero hash.
    pub const ZERO: H256 = H256([0u8; 32]);

    /// View as a byte slice.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Construct from a slice; `None` unless exactly 32 bytes.
    pub fn from_slice(slice: &[u8]) -> Option<Self> {
        if slice.len() != 32 {
            return None;
        }
        let mut buf = [0u8; 32];
        buf.copy_from_slice(slice);
        Some(H256(buf))
    }

    /// Interpret the bytes as a big-endian [`U256`].
    pub fn to_u256(&self) -> U256 {
        U256::from_be_bytes(self.0)
    }

    /// Store a [`U256`] as its big-endian byte representation.
    pub fn from_u256(v: U256) -> Self {
        H256(v.to_be_bytes())
    }

    /// True iff every byte is zero.
    pub fn is_zero(&self) -> bool {
        self.0 == [0u8; 32]
    }

    /// Render as a lowercase `0x…` hex string.
    pub fn to_hex(&self) -> String {
        format!("0x{}", hex::encode(self.0))
    }

    /// Parse from a hex string with optional `0x` prefix.
    pub fn from_hex(s: &str) -> Option<Self> {
        let s = s.strip_prefix("0x").unwrap_or(s);
        let bytes = hex::decode(s).ok()?;
        Self::from_slice(&bytes)
    }
}

impl fmt::Debug for H256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "H256({})", self.to_hex())
    }
}

impl fmt::Display for H256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl From<[u8; 32]> for H256 {
    fn from(bytes: [u8; 32]) -> Self {
        H256(bytes)
    }
}

impl From<U256> for H256 {
    fn from(v: U256) -> Self {
        H256::from_u256(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_round_trip() {
        let h = H256([7u8; 32]);
        assert_eq!(H256::from_slice(h.as_bytes()), Some(h));
        assert_eq!(H256::from_slice(&[1, 2, 3]), None);
    }

    #[test]
    fn u256_round_trip() {
        let v = U256::from_u64(0xdeadbeef);
        assert_eq!(H256::from_u256(v).to_u256(), v);
    }

    #[test]
    fn hex_round_trip() {
        let h = H256([0xab; 32]);
        assert_eq!(H256::from_hex(&h.to_hex()), Some(h));
        assert_eq!(H256::from_hex("0x1234"), None);
        assert_eq!(H256::from_hex("zz"), None);
    }

    #[test]
    fn zero_check() {
        assert!(H256::ZERO.is_zero());
        assert!(!H256([1u8; 32]).is_zero());
    }
}
