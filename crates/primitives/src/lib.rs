//! Base value types shared across the SMACS workspace.
//!
//! The types here mirror the primitives of the Ethereum execution layer that
//! the paper's prototype runs on: 256-bit words ([`U256`]), 32-byte hashes
//! ([`H256`]), 20-byte account addresses ([`Address`]), cheap byte buffers
//! ([`Bytes`]), and the RLP encoding used to serialize transactions
//! ([`rlp`]).

pub mod address;
pub mod bytes;
pub mod epoch;
pub mod hash;
pub mod hexutil;
pub mod json;
pub mod pool;
pub mod rlp;
pub mod u256;

pub use address::Address;
pub use bytes::Bytes;
pub use epoch::EpochCell;
pub use hash::H256;
pub use pool::WorkerPool;
pub use u256::U256;

/// One ether, in wei.
pub const ETHER: u128 = 1_000_000_000_000_000_000;
/// One gwei, in wei.
pub const GWEI: u128 = 1_000_000_000;

/// Convert a wei amount to a fractional ether value (for reporting only).
pub fn wei_to_ether(wei: u128) -> f64 {
    wei as f64 / ETHER as f64
}

/// Convert an ether amount to wei, saturating on overflow.
pub fn ether_to_wei(ether: f64) -> u128 {
    (ether * ETHER as f64) as u128
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ether_round_trip() {
        assert_eq!(wei_to_ether(ETHER), 1.0);
        assert_eq!(ether_to_wei(2.0), 2 * ETHER);
        assert_eq!(wei_to_ether(GWEI), 1e-9);
    }
}
