//! A shared fixed-size worker pool with a bounded two-priority job queue
//! and a scoped, deadlock-free fan-out primitive.
//!
//! The Token Service hot path runs entirely through one of these: the HTTP
//! reactor submits ready connections as jobs (so 10k keep-alive clients cost
//! a handful of threads instead of 10k), and `issue_batch` fans signature
//! creation across the same pool. Three design points make that sharing safe:
//!
//! - **Bounded queues.** [`WorkerPool::try_execute`] refuses work when its
//!   lane is full instead of growing without limit — the caller decides
//!   (the HTTP reactor keeps a ready connection in its retry backlog; the
//!   [`WorkerPool::scope_map`] helpers are simply skipped because the
//!   caller does the work itself).
//! - **Two priority lanes.** Workers drain the [`Priority::High`] lane
//!   (request serving, signing fan-out) before touching the
//!   [`Priority::Low`] lane (accepting new connections), so `issue_batch`
//!   latency holds even while a connection storm floods the listener.
//!   Each lane has its own capacity; a saturated low lane can never crowd
//!   out latency-critical work.
//! - **Caller participation.** [`WorkerPool::scope_map`] never *waits* for
//!   a worker: the calling thread drives items itself while queued helper
//!   jobs join in as workers free up. A fan-out submitted from inside a
//!   pool job therefore always completes even when every worker is busy —
//!   the classic pool-within-pool deadlock cannot happen.
//!
//! `scope_map` borrows non-`'static` data (the closure and result slots
//! live on the caller's stack). Helper jobs reach that state through raw
//! pointers guarded by a [`Gate`]: a helper must `enter` the gate before
//! touching anything, and `scope_map` cancels the gate and waits for active
//! helpers to exit before returning — a helper that dequeues late finds the
//! gate closed and returns without touching freed memory.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// The queue was full; the job was not accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFull;

/// Which lane a job enters. Workers always drain `High` before `Low`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Priority {
    /// Latency-critical work: serving a readable connection, signing.
    High,
    /// Deferrable work: draining the accept backlog under a storm.
    Low,
}

struct PoolState {
    high: VecDeque<Job>,
    low: VecDeque<Job>,
    shutdown: bool,
}

struct PoolInner {
    state: Mutex<PoolState>,
    /// Signals workers that a job (or shutdown) is available.
    work_ready: Condvar,
    high_capacity: usize,
    low_capacity: usize,
}

/// A fixed set of worker threads draining a bounded job queue.
pub struct WorkerPool {
    inner: Arc<PoolInner>,
    threads: usize,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl WorkerPool {
    /// A pool of `threads` workers with both lanes bounded at `capacity`.
    pub fn new(threads: usize, capacity: usize) -> Arc<WorkerPool> {
        WorkerPool::with_lanes(threads, capacity, capacity)
    }

    /// A pool of `threads` workers with independently bounded lanes:
    /// `high_capacity` for latency-critical jobs, `low_capacity` for
    /// deferrable ones (accept draining).
    pub fn with_lanes(
        threads: usize,
        high_capacity: usize,
        low_capacity: usize,
    ) -> Arc<WorkerPool> {
        let threads = threads.max(1);
        let inner = Arc::new(PoolInner {
            state: Mutex::new(PoolState {
                high: VecDeque::new(),
                low: VecDeque::new(),
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            high_capacity: high_capacity.max(1),
            low_capacity: low_capacity.max(1),
        });
        let workers = (0..threads)
            .map(|i| {
                let inner = inner.clone();
                std::thread::Builder::new()
                    .name(format!("smacs-pool-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn pool worker")
            })
            .collect();
        Arc::new(WorkerPool {
            inner,
            threads,
            workers: Mutex::new(workers),
        })
    }

    /// The process-wide shared pool, sized to the machine
    /// (`available_parallelism`). Built lazily on first use; never torn
    /// down. This is the default pool behind `TokenService` batch fan-out.
    pub fn shared() -> &'static Arc<WorkerPool> {
        static SHARED: OnceLock<Arc<WorkerPool>> = OnceLock::new();
        SHARED.get_or_init(|| {
            let threads = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1);
            WorkerPool::new(threads, 4096)
        })
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Jobs currently waiting across both lanes (diagnostics).
    pub fn queued(&self) -> usize {
        let state = self.inner.state.lock().expect("pool lock");
        state.high.len() + state.low.len()
    }

    /// Jobs currently waiting in the low-priority lane (diagnostics).
    pub fn queued_low(&self) -> usize {
        self.inner.state.lock().expect("pool lock").low.len()
    }

    /// Submit a high-priority job, refusing (rather than blocking or
    /// growing) when the lane is at capacity or the pool is shutting down.
    pub fn try_execute<F: FnOnce() + Send + 'static>(&self, job: F) -> Result<(), QueueFull> {
        self.try_execute_prio(Priority::High, job)
    }

    /// Submit a job into an explicit lane; same refusal semantics as
    /// [`WorkerPool::try_execute`], judged against that lane's capacity.
    pub fn try_execute_prio<F: FnOnce() + Send + 'static>(
        &self,
        prio: Priority,
        job: F,
    ) -> Result<(), QueueFull> {
        let mut state = self.inner.state.lock().expect("pool lock");
        if state.shutdown {
            return Err(QueueFull);
        }
        match prio {
            Priority::High => {
                if state.high.len() >= self.inner.high_capacity {
                    return Err(QueueFull);
                }
                state.high.push_back(Box::new(job));
            }
            Priority::Low => {
                if state.low.len() >= self.inner.low_capacity {
                    return Err(QueueFull);
                }
                state.low.push_back(Box::new(job));
            }
        }
        drop(state);
        self.inner.work_ready.notify_one();
        Ok(())
    }

    /// Map `f` over `0..len` with deterministic result ordering, using the
    /// calling thread plus up to `threads − 1` pool helpers.
    ///
    /// The caller always participates, so completion never depends on a
    /// worker being free (no deadlock when called from inside a pool job),
    /// and a pool of 1 degenerates to a plain sequential loop. Helper jobs
    /// are submitted with [`WorkerPool::try_execute`]; a full queue just
    /// means less parallelism. Panics in `f` are re-raised on the caller
    /// after all in-flight helpers have exited.
    pub fn scope_map<R, F>(&self, len: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if len == 0 {
            return Vec::new();
        }
        let slots: Vec<Mutex<Option<R>>> = (0..len).map(|_| Mutex::new(None)).collect();
        let gate = Arc::new(Gate::new());
        let shared = ScopeShared {
            next: AtomicUsize::new(0),
            len,
            f: &f,
            slots: &slots,
            gate: &gate,
        };

        // Helpers reach the stack-borrowed state via a raw pointer; the
        // gate guarantees they only dereference it while this frame waits.
        let ptr = SendPtr(&shared as *const ScopeShared<'_, R, F> as *const ());
        let helpers = self.threads.saturating_sub(1).min(len.saturating_sub(1));
        for _ in 0..helpers {
            let gate = gate.clone();
            if self
                .try_execute(move || {
                    if gate.enter() {
                        // SAFETY: entering the gate proves the owning
                        // `scope_map` frame is still alive and waiting; it
                        // cannot return until we `exit`.
                        let shared = unsafe { &*(ptr.get() as *const ScopeShared<'_, R, F>) };
                        drive(shared);
                        gate.exit();
                    }
                })
                .is_err()
            {
                break; // queue full — the caller will do the work alone
            }
        }

        // Ensure the gate is cancelled and drained even if `f` panics on
        // the calling thread, so unwinding can't race an active helper.
        struct CancelOnDrop<'g>(&'g Gate);
        impl Drop for CancelOnDrop<'_> {
            fn drop(&mut self) {
                self.0.cancel_and_wait();
            }
        }
        let guard = CancelOnDrop(&gate);
        drive(&shared);
        gate.wait_items(len);
        drop(guard); // cancel + wait for stragglers before touching slots

        if gate.panicked() {
            panic!("WorkerPool::scope_map: a worker panicked");
        }
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("slot lock")
                    .expect("all items completed")
            })
            .collect()
    }

    /// Stop accepting jobs, discard the queue, and join every worker
    /// (in-flight jobs run to completion).
    pub fn shutdown(&self) {
        {
            let mut state = self.inner.state.lock().expect("pool lock");
            state.shutdown = true;
            state.high.clear();
            state.low.clear();
        }
        self.inner.work_ready.notify_all();
        let workers = std::mem::take(&mut *self.workers.lock().expect("workers lock"));
        for handle in workers {
            let _ = handle.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(inner: &PoolInner) {
    loop {
        let job = {
            let mut state = inner.state.lock().expect("pool lock");
            loop {
                // High lane first: a queued accept never delays signing.
                if let Some(job) = state.high.pop_front() {
                    break job;
                }
                if let Some(job) = state.low.pop_front() {
                    break job;
                }
                if state.shutdown {
                    return;
                }
                state = inner.work_ready.wait(state).expect("pool lock");
            }
        };
        // A panicking job must not take the worker down with it.
        let _ = catch_unwind(AssertUnwindSafe(job));
    }
}

// ---- scope_map internals ----

struct ScopeShared<'a, R, F> {
    next: AtomicUsize,
    len: usize,
    f: &'a F,
    slots: &'a [Mutex<Option<R>>],
    gate: &'a Arc<Gate>,
}

/// Work-steal items by atomic index until none remain.
fn drive<R, F: Fn(usize) -> R + Sync>(shared: &ScopeShared<'_, R, F>) {
    loop {
        let i = shared.next.fetch_add(1, Ordering::SeqCst);
        if i >= shared.len {
            return;
        }
        match catch_unwind(AssertUnwindSafe(|| (shared.f)(i))) {
            Ok(result) => {
                *shared.slots[i].lock().expect("slot lock") = Some(result);
                shared.gate.item_done(false);
            }
            Err(_) => shared.gate.item_done(true),
        }
    }
}

#[derive(Clone, Copy)]
struct SendPtr(*const ());

impl SendPtr {
    /// Accessor (rather than field access) so closures capture the whole
    /// `Send` wrapper — edition-2021 disjoint capture would otherwise
    /// grab the raw non-`Send` pointer field directly.
    fn get(self) -> *const () {
        self.0
    }
}

// SAFETY: the pointee is only dereferenced under the gate protocol, which
// guarantees the owning stack frame is alive and the data is Sync.
unsafe impl Send for SendPtr {}

/// Coordination for one `scope_map` call: counts completed items, tracks
/// active helpers, and fences late helpers out once the scope is over.
struct Gate {
    state: Mutex<GateState>,
    changed: Condvar,
}

struct GateState {
    cancelled: bool,
    active_helpers: usize,
    items_done: usize,
    panicked: bool,
}

impl Gate {
    fn new() -> Gate {
        Gate {
            state: Mutex::new(GateState {
                cancelled: false,
                active_helpers: 0,
                items_done: 0,
                panicked: false,
            }),
            changed: Condvar::new(),
        }
    }

    /// A helper announces itself; `false` means the scope already ended.
    fn enter(&self) -> bool {
        let mut state = self.state.lock().expect("gate lock");
        if state.cancelled {
            return false;
        }
        state.active_helpers += 1;
        true
    }

    fn exit(&self) {
        let mut state = self.state.lock().expect("gate lock");
        state.active_helpers -= 1;
        drop(state);
        self.changed.notify_all();
    }

    fn item_done(&self, panicked: bool) {
        let mut state = self.state.lock().expect("gate lock");
        state.items_done += 1;
        state.panicked |= panicked;
        drop(state);
        self.changed.notify_all();
    }

    fn wait_items(&self, len: usize) {
        let mut state = self.state.lock().expect("gate lock");
        while state.items_done < len {
            state = self.changed.wait(state).expect("gate lock");
        }
    }

    fn cancel_and_wait(&self) {
        let mut state = self.state.lock().expect("gate lock");
        state.cancelled = true;
        while state.active_helpers > 0 {
            state = self.changed.wait(state).expect("gate lock");
        }
    }

    fn panicked(&self) -> bool {
        self.state.lock().expect("gate lock").panicked
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::time::Duration;

    #[test]
    fn executes_jobs() {
        let pool = WorkerPool::new(2, 16);
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..8 {
            let counter = counter.clone();
            pool.try_execute(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while counter.load(Ordering::SeqCst) < 8 {
            assert!(std::time::Instant::now() < deadline, "jobs never ran");
            std::thread::sleep(Duration::from_millis(1));
        }
        pool.shutdown();
    }

    #[test]
    fn bounded_queue_refuses_overflow() {
        let pool = WorkerPool::new(1, 1);
        // Occupy the only worker, then fill the 1-slot queue.
        let release = Arc::new((Mutex::new(false), Condvar::new()));
        let r = release.clone();
        pool.try_execute(move || {
            let (lock, cv) = &*r;
            let mut go = lock.lock().unwrap();
            while !*go {
                go = cv.wait(go).unwrap();
            }
        })
        .unwrap();
        // Wait until the worker picked the blocker up.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while pool.queued() > 0 {
            assert!(std::time::Instant::now() < deadline);
            std::thread::sleep(Duration::from_millis(1));
        }
        pool.try_execute(|| {}).unwrap(); // fills the queue
        assert_eq!(pool.try_execute(|| {}), Err(QueueFull));
        let (lock, cv) = &*release;
        *lock.lock().unwrap() = true;
        cv.notify_all();
        pool.shutdown();
    }

    #[test]
    fn high_lane_jobs_run_before_queued_low_lane_jobs() {
        let pool = WorkerPool::with_lanes(1, 16, 16);
        // Wedge the only worker so subsequent submissions stay queued.
        let release = Arc::new((Mutex::new(false), Condvar::new()));
        let r = release.clone();
        pool.try_execute(move || {
            let (lock, cv) = &*r;
            let mut go = lock.lock().unwrap();
            while !*go {
                go = cv.wait(go).unwrap();
            }
        })
        .unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while pool.queued() > 0 {
            assert!(std::time::Instant::now() < deadline);
            std::thread::sleep(Duration::from_millis(1));
        }
        // Queue low first, then high; the worker must run high first.
        let order = Arc::new(Mutex::new(Vec::new()));
        for i in 0..3 {
            let order = order.clone();
            pool.try_execute_prio(Priority::Low, move || {
                order.lock().unwrap().push(format!("low{i}"));
            })
            .unwrap();
        }
        for i in 0..3 {
            let order = order.clone();
            pool.try_execute_prio(Priority::High, move || {
                order.lock().unwrap().push(format!("high{i}"));
            })
            .unwrap();
        }
        let (lock, cv) = &*release;
        *lock.lock().unwrap() = true;
        cv.notify_all();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while order.lock().unwrap().len() < 6 {
            assert!(std::time::Instant::now() < deadline, "jobs never drained");
            std::thread::sleep(Duration::from_millis(1));
        }
        let got = order.lock().unwrap().clone();
        assert_eq!(got, ["high0", "high1", "high2", "low0", "low1", "low2"]);
        pool.shutdown();
    }

    #[test]
    fn lanes_have_independent_capacities() {
        let pool = WorkerPool::with_lanes(1, 1, 2);
        // Wedge the worker.
        let release = Arc::new((Mutex::new(false), Condvar::new()));
        let r = release.clone();
        pool.try_execute(move || {
            let (lock, cv) = &*r;
            let mut go = lock.lock().unwrap();
            while !*go {
                go = cv.wait(go).unwrap();
            }
        })
        .unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while pool.queued() > 0 {
            assert!(std::time::Instant::now() < deadline);
            std::thread::sleep(Duration::from_millis(1));
        }
        // High lane holds 1; a full high lane leaves the low lane open.
        pool.try_execute(|| {}).unwrap();
        assert_eq!(pool.try_execute(|| {}), Err(QueueFull));
        pool.try_execute_prio(Priority::Low, || {}).unwrap();
        pool.try_execute_prio(Priority::Low, || {}).unwrap();
        assert_eq!(pool.try_execute_prio(Priority::Low, || {}), Err(QueueFull));
        assert_eq!(pool.queued_low(), 2);
        let (lock, cv) = &*release;
        *lock.lock().unwrap() = true;
        cv.notify_all();
        pool.shutdown();
    }

    #[test]
    fn scope_map_orders_results() {
        let pool = WorkerPool::new(4, 64);
        let out = pool.scope_map(100, |i| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
        pool.shutdown();
    }

    #[test]
    fn scope_map_on_single_thread_pool_is_sequential() {
        let pool = WorkerPool::new(1, 4);
        let out = pool.scope_map(10, |i| i + 1);
        assert_eq!(out, (1..=10).collect::<Vec<_>>());
        pool.shutdown();
    }

    #[test]
    fn scope_map_from_inside_a_pool_job_cannot_deadlock() {
        // One worker, fully occupied by the outer job: the inner fan-out
        // must still complete via caller participation.
        let pool = WorkerPool::new(1, 4);
        let pool2 = pool.clone();
        let (tx, rx) = std::sync::mpsc::channel();
        pool.try_execute(move || {
            let sum: usize = pool2.scope_map(32, |i| i).iter().sum();
            tx.send(sum).unwrap();
        })
        .unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_secs(10)).unwrap(), 496);
        pool.shutdown();
    }

    #[test]
    fn scope_map_borrows_caller_state() {
        let pool = WorkerPool::new(4, 64);
        let data: Vec<u64> = (0..1000).collect();
        let doubled = pool.scope_map(data.len(), |i| data[i] * 2);
        assert_eq!(doubled[999], 1998);
        pool.shutdown();
    }

    #[test]
    fn scope_map_propagates_panics() {
        let pool = WorkerPool::new(2, 16);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope_map(8, |i| {
                if i == 3 {
                    panic!("boom");
                }
                i
            })
        }));
        assert!(result.is_err());
        // The pool survives and keeps working.
        assert_eq!(pool.scope_map(4, |i| i), vec![0, 1, 2, 3]);
        pool.shutdown();
    }

    #[test]
    fn shutdown_joins_and_refuses_new_work() {
        let pool = WorkerPool::new(2, 16);
        pool.shutdown();
        assert_eq!(pool.try_execute(|| {}), Err(QueueFull));
    }

    #[test]
    fn shared_pool_is_a_singleton() {
        let a = Arc::as_ptr(WorkerPool::shared());
        let b = Arc::as_ptr(WorkerPool::shared());
        assert_eq!(a, b);
        assert!(WorkerPool::shared().threads() >= 1);
    }
}
