//! Small hex helpers shared by debugging and wire-format code.

/// Encode bytes as a `0x`-prefixed lowercase hex string.
pub fn encode_prefixed(bytes: &[u8]) -> String {
    format!("0x{}", hex::encode(bytes))
}

/// Decode a hex string with optional `0x` prefix.
pub fn decode_flexible(s: &str) -> Option<Vec<u8>> {
    let s = s.strip_prefix("0x").unwrap_or(s);
    hex::decode(s).ok()
}

/// Truncate a hex rendering for human-oriented logs: `0x366c…d488`.
pub fn abbreviate(bytes: &[u8]) -> String {
    if bytes.len() <= 4 {
        return encode_prefixed(bytes);
    }
    let full = hex::encode(bytes);
    format!("0x{}…{}", &full[..4], &full[full.len() - 4..])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let data = vec![0x12, 0x34, 0xab];
        assert_eq!(decode_flexible(&encode_prefixed(&data)), Some(data.clone()));
        assert_eq!(decode_flexible("1234ab"), Some(data));
        assert_eq!(decode_flexible("xyz"), None);
    }

    #[test]
    fn abbreviation() {
        assert_eq!(abbreviate(&[0xab, 0xcd]), "0xabcd");
        let long = [0x11u8; 20];
        let s = abbreviate(&long);
        assert!(s.starts_with("0x1111"));
        assert!(s.ends_with("1111"));
        assert!(s.contains('…'));
    }
}
