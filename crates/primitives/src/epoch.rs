//! Epoch-stamped `Arc` snapshots: read-mostly shared state without
//! per-read locking.
//!
//! [`EpochCell<T>`] holds an `Arc<T>` plus a monotonically increasing
//! epoch. Writers swap the whole `Arc` and bump the epoch; readers keep a
//! thread-local `(cell, epoch) → Arc` cache, so the steady-state read path
//! is one atomic load and a cache hit — no lock, no contention, no
//! reference-count traffic on the shared `Arc`. Only a reader that
//! observes a new epoch touches the (briefly held) swap lock to refresh
//! its cached snapshot.
//!
//! This is what lets Token Service issuance check rules concurrently
//! without ever contending with other issuers: each worker thread pins the
//! current `Arc<RuleBook>` once per rule-book generation and validates
//! against that immutable snapshot with no lock held. `set_rules` is
//! linearizable (a swap under the writer lock) and never blocks readers
//! that already hold a snapshot — they simply finish their request against
//! the generation they started with, the same semantics the old
//! `RwLock<RuleBook>` gave a request that acquired the read lock first.

use std::any::Any;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Global id source so every cell gets a process-unique cache key.
static NEXT_CELL_ID: AtomicU64 = AtomicU64::new(1);

/// Per-thread snapshot cache: `(cell id, epoch, snapshot)`. A handful of
/// entries covers every realistic mix of cells touched by one thread; the
/// cache is correctness-neutral (misses just take the slow path).
const CACHE_SLOTS: usize = 16;

type CacheEntry = (u64, u64, Arc<dyn Any + Send + Sync>);

thread_local! {
    static SNAPSHOT_CACHE: RefCell<Vec<CacheEntry>> = const { RefCell::new(Vec::new()) };
}

/// A swappable `Arc<T>` with lock-free cached reads.
pub struct EpochCell<T: Send + Sync + 'static> {
    id: u64,
    /// Bumped after every swap; readers use it to validate cached Arcs.
    epoch: AtomicU64,
    /// The authoritative current snapshot. Held only for the duration of a
    /// pointer clone (readers) or a swap (writers) — never while user code
    /// runs against the value.
    current: Mutex<Arc<T>>,
}

impl<T: Send + Sync + 'static> EpochCell<T> {
    /// A cell initially holding `value`.
    pub fn new(value: T) -> EpochCell<T> {
        EpochCell {
            id: NEXT_CELL_ID.fetch_add(1, Ordering::Relaxed),
            epoch: AtomicU64::new(0),
            current: Mutex::new(Arc::new(value)),
        }
    }

    /// The current snapshot. Steady state: one atomic load plus a
    /// thread-local hit; after a swap: one brief lock to re-pin.
    pub fn load(&self) -> Arc<T> {
        let epoch = self.epoch.load(Ordering::Acquire);
        let cached = SNAPSHOT_CACHE.with(|cache| {
            cache
                .borrow()
                .iter()
                .find_map(|(id, e, arc)| (*id == self.id && *e == epoch).then(|| arc.clone()))
        });
        if let Some(arc) = cached {
            if let Ok(typed) = arc.downcast::<T>() {
                return typed;
            }
        }
        // Slow path: pin the current snapshot and cache it. The epoch is
        // re-read *before* the pointer clone, so a cached entry can never
        // be older than the epoch it is stored under (a swap bumps the
        // epoch only after publishing the new Arc).
        let epoch = self.epoch.load(Ordering::Acquire);
        let arc = self.current.lock().expect("epoch cell lock").clone();
        let erased: Arc<dyn Any + Send + Sync> = arc.clone();
        SNAPSHOT_CACHE.with(|cache| {
            let mut cache = cache.borrow_mut();
            cache.retain(|(id, _, _)| *id != self.id);
            if cache.len() >= CACHE_SLOTS {
                cache.remove(0);
            }
            cache.push((self.id, epoch, erased));
        });
        arc
    }

    /// Replace the value. Readers holding the previous snapshot keep it;
    /// new loads see the replacement.
    pub fn store(&self, value: T) {
        let mut current = self.current.lock().expect("epoch cell lock");
        *current = Arc::new(value);
        // Publish the swap before bumping the epoch (the release pairs
        // with the Acquire in `load`).
        self.epoch.fetch_add(1, Ordering::Release);
    }

    /// Read-copy-update: clone the current value, let `edit` mutate the
    /// copy, and swap it in. Concurrent `update` calls are serialized by
    /// the cell's writer lock, so no edit is ever lost.
    pub fn update<F: FnOnce(&mut T)>(&self, edit: F)
    where
        T: Clone,
    {
        let mut current = self.current.lock().expect("epoch cell lock");
        let mut next = (**current).clone();
        edit(&mut next);
        *current = Arc::new(next);
        self.epoch.fetch_add(1, Ordering::Release);
    }

    /// The swap count so far (diagnostics / tests).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }
}

impl<T: Send + Sync + 'static + std::fmt::Debug> std::fmt::Debug for EpochCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EpochCell")
            .field("epoch", &self.epoch())
            .field("value", &self.load())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_store_round_trip() {
        let cell = EpochCell::new(1u32);
        assert_eq!(*cell.load(), 1);
        cell.store(2);
        assert_eq!(*cell.load(), 2);
        assert_eq!(cell.epoch(), 1);
    }

    #[test]
    fn snapshots_outlive_swaps() {
        let cell = EpochCell::new(String::from("old"));
        let pinned = cell.load();
        cell.store(String::from("new"));
        assert_eq!(*pinned, "old");
        assert_eq!(*cell.load(), "new");
    }

    #[test]
    fn update_applies_edits_in_order() {
        let cell = EpochCell::new(Vec::<u32>::new());
        cell.update(|v| v.push(1));
        cell.update(|v| v.push(2));
        assert_eq!(*cell.load(), vec![1, 2]);
    }

    #[test]
    fn cached_reads_see_every_swap() {
        let cell = EpochCell::new(0u64);
        for i in 1..100 {
            assert_eq!(*cell.load(), i - 1); // prime the thread-local cache
            cell.store(i);
            assert_eq!(*cell.load(), i, "stale read after swap {i}");
        }
    }

    #[test]
    fn many_cells_do_not_cross_talk() {
        let cells: Vec<EpochCell<usize>> = (0..40).map(EpochCell::new).collect();
        for _ in 0..3 {
            for (i, cell) in cells.iter().enumerate() {
                assert_eq!(*cell.load(), i);
            }
        }
        cells[7].store(700);
        assert_eq!(*cells[7].load(), 700);
        assert_eq!(*cells[8].load(), 8);
    }

    #[test]
    fn concurrent_readers_and_writer() {
        let cell = Arc::new(EpochCell::new(0u64));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let cell = cell.clone();
                let stop = stop.clone();
                std::thread::spawn(move || {
                    let mut last = 0;
                    while !stop.load(Ordering::SeqCst) {
                        let v = *cell.load();
                        assert!(v >= last, "time went backwards: {v} < {last}");
                        last = v;
                    }
                })
            })
            .collect();
        for i in 1..=1000 {
            cell.store(i);
        }
        stop.store(true, Ordering::SeqCst);
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(*cell.load(), 1000);
    }
}
