//! A 256-bit unsigned integer, the native word size of the EVM.
//!
//! Implemented as four little-endian `u64` limbs. The arithmetic surface is
//! deliberately the subset the simulator needs (checked/wrapping add, sub,
//! mul, div/rem, bit ops, shifts, byte conversion) rather than a full bignum
//! library.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, BitAnd, BitOr, BitXor, Div, Mul, Not, Rem, Shl, Shr, Sub};

/// 256-bit unsigned integer (little-endian `u64` limbs).
///
/// ```
/// use smacs_primitives::U256;
///
/// let a = U256::from_u64(1) << 128;
/// let b = a.wrapping_mul(U256::from_u64(3));
/// assert_eq!(b >> 128, U256::from_u64(3));
/// assert_eq!(U256::MAX.wrapping_add(U256::ONE), U256::ZERO); // EVM wrap
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct U256(pub [u64; 4]);

impl U256 {
    /// The value `0`.
    pub const ZERO: U256 = U256([0, 0, 0, 0]);
    /// The value `1`.
    pub const ONE: U256 = U256([1, 0, 0, 0]);
    /// The maximum representable value, `2^256 - 1`.
    pub const MAX: U256 = U256([u64::MAX; 4]);

    /// Construct from a `u64`.
    pub const fn from_u64(v: u64) -> Self {
        U256([v, 0, 0, 0])
    }

    /// Construct from a `u128`.
    pub const fn from_u128(v: u128) -> Self {
        U256([v as u64, (v >> 64) as u64, 0, 0])
    }

    /// Lossy conversion to `u64` (low limb).
    pub const fn low_u64(&self) -> u64 {
        self.0[0]
    }

    /// Lossy conversion to `u128` (low two limbs).
    pub const fn low_u128(&self) -> u128 {
        self.0[0] as u128 | ((self.0[1] as u128) << 64)
    }

    /// Convert to `u64` if the value fits.
    pub fn to_u64(&self) -> Option<u64> {
        if self.0[1] == 0 && self.0[2] == 0 && self.0[3] == 0 {
            Some(self.0[0])
        } else {
            None
        }
    }

    /// Convert to `u128` if the value fits.
    pub fn to_u128(&self) -> Option<u128> {
        if self.0[2] == 0 && self.0[3] == 0 {
            Some(self.low_u128())
        } else {
            None
        }
    }

    /// True iff the value is zero.
    pub fn is_zero(&self) -> bool {
        self.0 == [0; 4]
    }

    /// Number of significant bits (`0` for zero).
    pub fn bits(&self) -> u32 {
        for i in (0..4).rev() {
            if self.0[i] != 0 {
                return (i as u32) * 64 + (64 - self.0[i].leading_zeros());
            }
        }
        0
    }

    /// Checked addition.
    pub fn checked_add(self, rhs: U256) -> Option<U256> {
        let (v, overflow) = self.overflowing_add(rhs);
        if overflow {
            None
        } else {
            Some(v)
        }
    }

    /// Overflowing addition.
    pub fn overflowing_add(self, rhs: U256) -> (U256, bool) {
        let mut out = [0u64; 4];
        let mut carry = false;
        for (i, limb) in out.iter_mut().enumerate() {
            let (a, c1) = self.0[i].overflowing_add(rhs.0[i]);
            let (b, c2) = a.overflowing_add(carry as u64);
            *limb = b;
            carry = c1 || c2;
        }
        (U256(out), carry)
    }

    /// Wrapping addition (mod 2^256), matching EVM `ADD`.
    pub fn wrapping_add(self, rhs: U256) -> U256 {
        self.overflowing_add(rhs).0
    }

    /// Checked subtraction.
    pub fn checked_sub(self, rhs: U256) -> Option<U256> {
        let (v, borrow) = self.overflowing_sub(rhs);
        if borrow {
            None
        } else {
            Some(v)
        }
    }

    /// Overflowing subtraction.
    pub fn overflowing_sub(self, rhs: U256) -> (U256, bool) {
        let mut out = [0u64; 4];
        let mut borrow = false;
        for (i, limb) in out.iter_mut().enumerate() {
            let (a, b1) = self.0[i].overflowing_sub(rhs.0[i]);
            let (b, b2) = a.overflowing_sub(borrow as u64);
            *limb = b;
            borrow = b1 || b2;
        }
        (U256(out), borrow)
    }

    /// Wrapping subtraction (mod 2^256), matching EVM `SUB`.
    pub fn wrapping_sub(self, rhs: U256) -> U256 {
        self.overflowing_sub(rhs).0
    }

    /// Checked multiplication.
    pub fn checked_mul(self, rhs: U256) -> Option<U256> {
        let (v, overflow) = self.overflowing_mul(rhs);
        if overflow {
            None
        } else {
            Some(v)
        }
    }

    /// Overflowing multiplication (schoolbook on 64-bit limbs).
    pub fn overflowing_mul(self, rhs: U256) -> (U256, bool) {
        let mut out = [0u64; 8];
        for i in 0..4 {
            let mut carry: u128 = 0;
            for j in 0..4 {
                let cur = out[i + j] as u128 + (self.0[i] as u128) * (rhs.0[j] as u128) + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            out[i + 4] = carry as u64;
        }
        let overflow = out[4..].iter().any(|&w| w != 0);
        (U256([out[0], out[1], out[2], out[3]]), overflow)
    }

    /// Wrapping multiplication (mod 2^256), matching EVM `MUL`.
    pub fn wrapping_mul(self, rhs: U256) -> U256 {
        self.overflowing_mul(rhs).0
    }

    /// Division; `None` when `rhs` is zero (EVM `DIV` returns 0 instead —
    /// callers that need EVM semantics use [`U256::div_evm`]).
    pub fn checked_div(self, rhs: U256) -> Option<U256> {
        if rhs.is_zero() {
            None
        } else {
            Some(self.div_rem(rhs).0)
        }
    }

    /// Remainder; `None` when `rhs` is zero.
    pub fn checked_rem(self, rhs: U256) -> Option<U256> {
        if rhs.is_zero() {
            None
        } else {
            Some(self.div_rem(rhs).1)
        }
    }

    /// EVM `DIV`: division with `x / 0 == 0`.
    pub fn div_evm(self, rhs: U256) -> U256 {
        self.checked_div(rhs).unwrap_or(U256::ZERO)
    }

    /// EVM `MOD`: remainder with `x % 0 == 0`.
    pub fn rem_evm(self, rhs: U256) -> U256 {
        self.checked_rem(rhs).unwrap_or(U256::ZERO)
    }

    /// Long division returning `(quotient, remainder)`.
    ///
    /// # Panics
    /// Panics if `rhs` is zero.
    pub fn div_rem(self, rhs: U256) -> (U256, U256) {
        assert!(!rhs.is_zero(), "division by zero");
        if self < rhs {
            return (U256::ZERO, self);
        }
        if let (Some(a), Some(b)) = (self.to_u128(), rhs.to_u128()) {
            return (U256::from_u128(a / b), U256::from_u128(a % b));
        }
        // Bitwise long division: adequate for the simulator's needs.
        let mut quotient = U256::ZERO;
        let mut remainder = U256::ZERO;
        let bits = self.bits();
        for i in (0..bits).rev() {
            remainder = remainder << 1;
            if self.bit(i) {
                remainder.0[0] |= 1;
            }
            if remainder >= rhs {
                remainder = remainder.wrapping_sub(rhs);
                quotient = quotient | (U256::ONE << i);
            }
        }
        (quotient, remainder)
    }

    /// Value of bit `i` (zero-indexed from the least significant bit).
    pub fn bit(&self, i: u32) -> bool {
        if i >= 256 {
            return false;
        }
        (self.0[(i / 64) as usize] >> (i % 64)) & 1 == 1
    }

    /// Big-endian 32-byte representation (EVM word layout).
    pub fn to_be_bytes(&self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for i in 0..4 {
            out[(3 - i) * 8..(4 - i) * 8].copy_from_slice(&self.0[i].to_be_bytes());
        }
        out
    }

    /// Parse from big-endian 32-byte representation.
    pub fn from_be_bytes(bytes: [u8; 32]) -> Self {
        let mut limbs = [0u64; 4];
        for i in 0..4 {
            let mut word = [0u8; 8];
            word.copy_from_slice(&bytes[(3 - i) * 8..(4 - i) * 8]);
            limbs[i] = u64::from_be_bytes(word);
        }
        U256(limbs)
    }

    /// Parse from a big-endian slice of at most 32 bytes (shorter slices are
    /// left-padded with zeros, as EVM calldata words are).
    pub fn from_be_slice(bytes: &[u8]) -> Option<Self> {
        if bytes.len() > 32 {
            return None;
        }
        let mut buf = [0u8; 32];
        buf[32 - bytes.len()..].copy_from_slice(bytes);
        Some(Self::from_be_bytes(buf))
    }

    /// Minimal big-endian representation with no leading zero bytes
    /// (the empty slice for zero) — the form RLP requires.
    pub fn to_be_bytes_trimmed(&self) -> Vec<u8> {
        let full = self.to_be_bytes();
        let first = full.iter().position(|&b| b != 0).unwrap_or(32);
        full[first..].to_vec()
    }

    /// Parse a decimal string.
    pub fn from_dec_str(s: &str) -> Option<Self> {
        if s.is_empty() {
            return None;
        }
        let mut acc = U256::ZERO;
        let ten = U256::from_u64(10);
        for c in s.chars() {
            let d = c.to_digit(10)?;
            acc = acc
                .checked_mul(ten)?
                .checked_add(U256::from_u64(d as u64))?;
        }
        Some(acc)
    }

    /// Parse a hex string with optional `0x` prefix.
    pub fn from_hex_str(s: &str) -> Option<Self> {
        let s = s.strip_prefix("0x").unwrap_or(s);
        if s.is_empty() || s.len() > 64 {
            return None;
        }
        let padded = format!("{:0>64}", s);
        let bytes = hex::decode(padded).ok()?;
        let mut buf = [0u8; 32];
        buf.copy_from_slice(&bytes);
        Some(Self::from_be_bytes(buf))
    }

    /// Render as a decimal string.
    pub fn to_dec_string(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        let mut digits = Vec::new();
        let mut cur = *self;
        let ten = U256::from_u64(10);
        while !cur.is_zero() {
            let (q, r) = cur.div_rem(ten);
            digits.push(char::from(b'0' + r.low_u64() as u8));
            cur = q;
        }
        digits.iter().rev().collect()
    }
}

impl From<u64> for U256 {
    fn from(v: u64) -> Self {
        U256::from_u64(v)
    }
}

impl From<u128> for U256 {
    fn from(v: u128) -> Self {
        U256::from_u128(v)
    }
}

impl From<u32> for U256 {
    fn from(v: u32) -> Self {
        U256::from_u64(v as u64)
    }
}

impl From<usize> for U256 {
    fn from(v: usize) -> Self {
        U256::from_u128(v as u128)
    }
}

impl Ord for U256 {
    fn cmp(&self, other: &Self) -> Ordering {
        for i in (0..4).rev() {
            match self.0[i].cmp(&other.0[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl PartialOrd for U256 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Add for U256 {
    type Output = U256;
    /// Panics on overflow in debug terms: use `wrapping_add` for EVM
    /// semantics. Here we follow standard Rust integer conventions.
    fn add(self, rhs: U256) -> U256 {
        self.checked_add(rhs).expect("U256 addition overflow")
    }
}

impl Sub for U256 {
    type Output = U256;
    fn sub(self, rhs: U256) -> U256 {
        self.checked_sub(rhs).expect("U256 subtraction underflow")
    }
}

impl Mul for U256 {
    type Output = U256;
    fn mul(self, rhs: U256) -> U256 {
        self.checked_mul(rhs).expect("U256 multiplication overflow")
    }
}

impl Div for U256 {
    type Output = U256;
    fn div(self, rhs: U256) -> U256 {
        self.checked_div(rhs).expect("U256 division by zero")
    }
}

impl Rem for U256 {
    type Output = U256;
    fn rem(self, rhs: U256) -> U256 {
        self.checked_rem(rhs).expect("U256 remainder by zero")
    }
}

impl Shl<u32> for U256 {
    type Output = U256;
    fn shl(self, shift: u32) -> U256 {
        if shift >= 256 {
            return U256::ZERO;
        }
        let limb_shift = (shift / 64) as usize;
        let bit_shift = shift % 64;
        let mut out = [0u64; 4];
        for i in (0..4).rev() {
            if i >= limb_shift {
                out[i] = self.0[i - limb_shift] << bit_shift;
                if bit_shift > 0 && i > limb_shift {
                    out[i] |= self.0[i - limb_shift - 1] >> (64 - bit_shift);
                }
            }
        }
        U256(out)
    }
}

impl Shr<u32> for U256 {
    type Output = U256;
    fn shr(self, shift: u32) -> U256 {
        if shift >= 256 {
            return U256::ZERO;
        }
        let limb_shift = (shift / 64) as usize;
        let bit_shift = shift % 64;
        let mut out = [0u64; 4];
        for (i, limb) in out.iter_mut().enumerate() {
            if i + limb_shift < 4 {
                *limb = self.0[i + limb_shift] >> bit_shift;
                if bit_shift > 0 && i + limb_shift + 1 < 4 {
                    *limb |= self.0[i + limb_shift + 1] << (64 - bit_shift);
                }
            }
        }
        U256(out)
    }
}

impl BitAnd for U256 {
    type Output = U256;
    fn bitand(self, rhs: U256) -> U256 {
        U256([
            self.0[0] & rhs.0[0],
            self.0[1] & rhs.0[1],
            self.0[2] & rhs.0[2],
            self.0[3] & rhs.0[3],
        ])
    }
}

impl BitOr for U256 {
    type Output = U256;
    fn bitor(self, rhs: U256) -> U256 {
        U256([
            self.0[0] | rhs.0[0],
            self.0[1] | rhs.0[1],
            self.0[2] | rhs.0[2],
            self.0[3] | rhs.0[3],
        ])
    }
}

impl BitXor for U256 {
    type Output = U256;
    fn bitxor(self, rhs: U256) -> U256 {
        U256([
            self.0[0] ^ rhs.0[0],
            self.0[1] ^ rhs.0[1],
            self.0[2] ^ rhs.0[2],
            self.0[3] ^ rhs.0[3],
        ])
    }
}

impl Not for U256 {
    type Output = U256;
    fn not(self) -> U256 {
        U256([!self.0[0], !self.0[1], !self.0[2], !self.0[3]])
    }
}

impl fmt::Debug for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "U256({})", self.to_dec_string())
    }
}

impl fmt::Display for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_dec_string())
    }
}

impl fmt::LowerHex for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let trimmed = self.to_be_bytes_trimmed();
        if trimmed.is_empty() {
            return f.write_str("0");
        }
        let s = hex::encode(trimmed);
        f.write_str(s.trim_start_matches('0'))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn basic_arithmetic() {
        let a = U256::from_u64(100);
        let b = U256::from_u64(42);
        assert_eq!(a + b, U256::from_u64(142));
        assert_eq!(a - b, U256::from_u64(58));
        assert_eq!(a * b, U256::from_u64(4200));
        assert_eq!(a / b, U256::from_u64(2));
        assert_eq!(a % b, U256::from_u64(16));
    }

    #[test]
    fn overflow_detection() {
        assert_eq!(U256::MAX.checked_add(U256::ONE), None);
        assert_eq!(U256::ZERO.checked_sub(U256::ONE), None);
        assert_eq!(U256::MAX.checked_mul(U256::from_u64(2)), None);
        assert_eq!(U256::MAX.wrapping_add(U256::ONE), U256::ZERO);
        assert_eq!(U256::ZERO.wrapping_sub(U256::ONE), U256::MAX);
    }

    #[test]
    fn evm_division_semantics() {
        assert_eq!(U256::from_u64(10).div_evm(U256::ZERO), U256::ZERO);
        assert_eq!(U256::from_u64(10).rem_evm(U256::ZERO), U256::ZERO);
    }

    #[test]
    fn cross_limb_carry() {
        let a = U256([u64::MAX, 0, 0, 0]);
        assert_eq!(a.wrapping_add(U256::ONE), U256([0, 1, 0, 0]));
        let b = U256([0, 1, 0, 0]);
        assert_eq!(b.wrapping_sub(U256::ONE), U256([u64::MAX, 0, 0, 0]));
    }

    #[test]
    fn multiplication_crosses_limbs() {
        let a = U256::from_u128(u128::MAX);
        let (sq, overflow) = a.overflowing_mul(a);
        assert!(!overflow);
        // (2^128 - 1)^2 = 2^256 - 2^129 + 1
        let expected = U256::MAX
            .wrapping_sub(U256::ONE << 129)
            .wrapping_add(U256::from_u64(2));
        assert_eq!(sq, expected);
    }

    #[test]
    fn shifts() {
        assert_eq!(U256::ONE << 0, U256::ONE);
        assert_eq!(U256::ONE << 64, U256([0, 1, 0, 0]));
        assert_eq!(U256::ONE << 255 >> 255, U256::ONE);
        assert_eq!(U256::ONE << 256, U256::ZERO);
        assert_eq!((U256::ONE << 70) >> 6, U256::ONE << 64);
    }

    #[test]
    fn byte_round_trip() {
        let v = U256([1, 2, 3, 4]);
        assert_eq!(U256::from_be_bytes(v.to_be_bytes()), v);
        let one = U256::ONE.to_be_bytes();
        assert_eq!(one[31], 1);
        assert!(one[..31].iter().all(|&b| b == 0));
    }

    #[test]
    fn trimmed_bytes() {
        assert!(U256::ZERO.to_be_bytes_trimmed().is_empty());
        assert_eq!(
            U256::from_u64(0x1234).to_be_bytes_trimmed(),
            vec![0x12, 0x34]
        );
    }

    #[test]
    fn decimal_round_trip() {
        for s in [
            "0",
            "1",
            "42",
            "18446744073709551616",
            "115792089237316195423570985008687907853269984665640564039457584007913129639935",
        ] {
            let v = U256::from_dec_str(s).unwrap();
            assert_eq!(v.to_dec_string(), s);
        }
        assert_eq!(U256::from_dec_str(""), None);
        assert_eq!(U256::from_dec_str("12a"), None);
        // One above MAX overflows.
        assert_eq!(
            U256::from_dec_str(
                "115792089237316195423570985008687907853269984665640564039457584007913129639936"
            ),
            None
        );
    }

    #[test]
    fn hex_parse() {
        assert_eq!(U256::from_hex_str("0x10"), Some(U256::from_u64(16)));
        assert_eq!(U256::from_hex_str("ff"), Some(U256::from_u64(255)));
        assert_eq!(U256::from_hex_str(""), None);
        assert_eq!(U256::from_hex_str("0x"), None);
    }

    #[test]
    fn ordering() {
        let small = U256::from_u64(5);
        let big = U256([0, 0, 0, 1]);
        assert!(small < big);
        assert!(big > small);
        assert_eq!(small.cmp(&small), Ordering::Equal);
    }

    #[test]
    fn bits_and_bit() {
        assert_eq!(U256::ZERO.bits(), 0);
        assert_eq!(U256::ONE.bits(), 1);
        assert_eq!((U256::ONE << 200).bits(), 201);
        assert!((U256::ONE << 200).bit(200));
        assert!(!(U256::ONE << 200).bit(199));
        assert!(!U256::MAX.bit(256));
    }

    #[test]
    fn from_be_slice_pads_left() {
        assert_eq!(U256::from_be_slice(&[1, 0]), Some(U256::from_u64(256)));
        assert_eq!(U256::from_be_slice(&[]), Some(U256::ZERO));
        assert_eq!(U256::from_be_slice(&[0u8; 33]), None);
    }

    #[test]
    fn json_round_trip() {
        use crate::json::{from_str, to_string};
        let v = U256([7, 8, 9, 10]);
        let json = to_string(&v);
        let back: U256 = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    fn arb_u256() -> impl Strategy<Value = U256> {
        prop::array::uniform4(any::<u64>()).prop_map(U256)
    }

    proptest! {
        #[test]
        fn prop_add_sub_round_trip(a in arb_u256(), b in arb_u256()) {
            let sum = a.wrapping_add(b);
            prop_assert_eq!(sum.wrapping_sub(b), a);
        }

        #[test]
        fn prop_add_commutative(a in arb_u256(), b in arb_u256()) {
            prop_assert_eq!(a.wrapping_add(b), b.wrapping_add(a));
        }

        #[test]
        fn prop_mul_matches_u128(a in any::<u64>(), b in any::<u64>()) {
            let product = U256::from_u64(a).wrapping_mul(U256::from_u64(b));
            prop_assert_eq!(product, U256::from_u128(a as u128 * b as u128));
        }

        #[test]
        fn prop_div_rem_reconstructs(a in arb_u256(), b in arb_u256()) {
            prop_assume!(!b.is_zero());
            let (q, r) = a.div_rem(b);
            prop_assert!(r < b);
            prop_assert_eq!(q.wrapping_mul(b).wrapping_add(r), a);
        }

        #[test]
        fn prop_bytes_round_trip(a in arb_u256()) {
            prop_assert_eq!(U256::from_be_bytes(a.to_be_bytes()), a);
        }

        #[test]
        fn prop_dec_round_trip(a in arb_u256()) {
            prop_assert_eq!(U256::from_dec_str(&a.to_dec_string()), Some(a));
        }

        #[test]
        fn prop_shift_inverse(a in arb_u256(), s in 0u32..256) {
            // Shifting left then right recovers the low bits that survived.
            let masked = if s == 0 { a } else { (a << s) >> s };
            let kept = if s == 0 { a } else { a & (U256::MAX >> s) };
            prop_assert_eq!(masked, kept);
        }

        #[test]
        fn prop_trimmed_round_trip(a in arb_u256()) {
            let trimmed = a.to_be_bytes_trimmed();
            prop_assert_eq!(U256::from_be_slice(&trimmed), Some(a));
        }
    }
}
