//! # SMACS — Smart Contract Access Control Service
//!
//! A full Rust reproduction of *SMACS: Smart Contract Access Control Service*
//! (Liu, Sun, Szalachowski — DSN 2020). SMACS moves expensive, updatable
//! Access Control Rules (ACRs) off-chain into a Token Service (TS) that issues
//! signed tokens; on-chain contracts perform only a lightweight, cheap token
//! verification that cryptographically binds each token to the transaction
//! context in which it may be used.
//!
//! This umbrella crate re-exports the whole workspace:
//!
//! - [`primitives`] — `U256`, `H256`, `Address`, RLP.
//! - [`crypto`] — keccak256, secp256k1 ECDSA with recovery (Ethereum style).
//! - [`chain`] — an Ethereum-like chain simulator with gas metering, message
//!   calls, and context objects (`tx.origin`, `msg.sender`, `msg.sig`,
//!   `msg.data`).
//! - [`token`] — SMACS token and token-request wire formats.
//! - [`core`] — the paper's contribution: contract-side verification (Alg. 1)
//!   and the cyclic one-time bitmap (Alg. 2), plus owner/client SDKs.
//! - [`ts`] — the Token Service with its ACR engine and front ends.
//! - [`verifiers`] — Hydra uniformity and ECF (re-entrancy) runtime tools.
//! - [`lang`] — Solidity-lite front-end and the Fig. 4 adoption transformer.
//! - [`contracts`] — the paper's example contracts (Bank/Attacker, token
//!   sale, call chains, baselines).
//!
//! See `examples/quickstart.rs` for a five-minute tour.

pub use smacs_chain as chain;
pub use smacs_contracts as contracts;
pub use smacs_core as core;
pub use smacs_crypto as crypto;
pub use smacs_lang as lang;
pub use smacs_primitives as primitives;
pub use smacs_token as token;
pub use smacs_ts as ts;
pub use smacs_verifiers as verifiers;
