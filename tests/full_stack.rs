//! Full-stack integration: the complete SMACS deployment story across all
//! crates — HTTP front end, service discovery, shielded contracts, token
//! issuance, on-chain verification, and the replicated counter.

use smacs::chain::Chain;
use smacs::contracts::BenchTarget;
use smacs::core::client::ClientWallet;
use smacs::core::fetcher::TokenFetcher;
use smacs::core::owner::{OwnerToolkit, ShieldParams};
use smacs::crypto::Keypair;
use smacs::token::{TokenRequest, TokenType};
use smacs::ts::discovery::ContractMetadata;
use smacs::ts::front::{decode_token_hex, FrontEnd, FrontRequest, FrontResponse};
use smacs::ts::http::{post_json, HttpClient, HttpServer};
use smacs::ts::{
    CounterCluster, ErrorCode, InProcessClient, ListPolicy, RuleBook, TokenService,
    TokenServiceConfig, TsApi,
};
use std::sync::Arc;

fn small_shield() -> ShieldParams {
    ShieldParams {
        token_lifetime_secs: 3_600,
        max_tx_per_second: 0.35,
        disable_one_time: false,
    }
}

/// The whole §III-C lifecycle over the real wire protocol: discover the TS
/// through contract metadata, fetch tokens over HTTP through the `TsApi`
/// surface (cached by a `TokenFetcher`), spend them on-chain, and rotate
/// rules — all against the same keep-alive connection.
#[test]
fn discovery_http_issuance_and_onchain_spend() {
    // Owner side.
    let mut chain = Chain::default_chain();
    let owner = chain.funded_keypair(1, 10u128.pow(24));
    let alice = ClientWallet::new(chain.funded_keypair(2, 10u128.pow(24)));
    let toolkit = OwnerToolkit::new(owner, Keypair::from_seed(5_000));
    let (target, _) = toolkit
        .deploy_shielded(&mut chain, Arc::new(BenchTarget), &small_shield())
        .unwrap();

    let mut rules = RuleBook::deny_all();
    let mut senders = ListPolicy::deny_all();
    senders.insert(alice.address().to_hex());
    rules.rules_mut(TokenType::Method).sender = Some(senders);
    let service = TokenService::new(
        toolkit.ts_keypair().clone(),
        rules,
        TokenServiceConfig::default(),
    );
    let now = chain.pending_env().timestamp;
    let front = Arc::new(FrontEnd::new(service, "owner-secret", now));
    let server = HttpServer::start(front.clone()).unwrap();

    // Service discovery (§VII-B): the TS itself publishes the contract
    // metadata, and the client reads it over the wire via `discover`.
    front.publish(
        target.address,
        ContractMetadata {
            name: "BenchTarget".into(),
            compiler: "smacs-chain 0.1".into(),
            token_service_url: Some(server.url()),
            replica_urls: Vec::new(),
        },
    );
    let api = HttpClient::connect(server.addr());
    let metadata = api
        .discover(target.address)
        .unwrap()
        .expect("TS discoverable");
    assert_eq!(metadata.token_service_url, Some(server.url()));
    // The published URL round-trips into a working client.
    let api = HttpClient::from_url(metadata.token_service_url.as_deref().unwrap()).unwrap();

    // Client side: fetch a token over HTTP through the caching fetcher.
    let api: Arc<dyn TsApi> = Arc::new(api);
    let fetcher = TokenFetcher::new(api.clone());
    let request =
        TokenRequest::method_token(target.address, alice.address(), BenchTarget::PING_SIG);
    let token = fetcher.fetch(&request, now).expect("alice whitelisted");

    // Spend it on-chain.
    let payload = BenchTarget::ping_payload(19, 23);
    let receipt = alice
        .call_with_token(&mut chain, target.address, 0, &payload, token)
        .unwrap();
    assert!(receipt.status.is_success(), "{:?}", receipt.status);

    // A second call is served from the client-side cache — same token, no
    // extra round trip.
    let again = fetcher.fetch(&request, now).unwrap();
    assert_eq!(again, token);
    assert_eq!(fetcher.stats(), (1, 1));

    // Owner rotates the rules over the same API: alice is revoked.
    assert_eq!(
        api.set_rules("wrong-secret", RuleBook::deny_all())
            .unwrap_err()
            .code,
        ErrorCode::Unauthorized
    );
    api.set_rules("owner-secret", RuleBook::deny_all()).unwrap();
    let err = api.issue(&request).unwrap_err();
    assert_eq!(err.code, ErrorCode::RuleViolation);

    server.shutdown();
}

/// Back-compat: a v1-format `POST /token`-era request (unversioned
/// envelope, one request per connection) is still accepted end-to-end —
/// the token it returns spends on-chain.
#[test]
fn v1_post_token_request_still_accepted() {
    let mut chain = Chain::default_chain();
    let owner = chain.funded_keypair(1, 10u128.pow(24));
    let alice = ClientWallet::new(chain.funded_keypair(2, 10u128.pow(24)));
    let toolkit = OwnerToolkit::new(owner, Keypair::from_seed(5_002));
    let (target, _) = toolkit
        .deploy_shielded(&mut chain, Arc::new(BenchTarget), &small_shield())
        .unwrap();
    let service = TokenService::new(
        toolkit.ts_keypair().clone(),
        RuleBook::permissive(),
        TokenServiceConfig::default(),
    );
    let now = chain.pending_env().timestamp;
    let server = HttpServer::start(Arc::new(FrontEnd::new(service, "owner-secret", now))).unwrap();

    // The v1 wire shape, byte-for-byte what the seed's clients sent.
    let request = FrontRequest::IssueToken {
        request: TokenRequest::method_token(target.address, alice.address(), BenchTarget::PING_SIG),
    };
    let body = smacs_primitives::json::to_string(&request);
    let response = post_json(server.addr(), &body).unwrap();
    let parsed: FrontResponse = smacs_primitives::json::from_str(&response).unwrap();
    let FrontResponse::Token { token_hex } = parsed else {
        panic!("expected a token, got {parsed:?}");
    };
    let token = decode_token_hex(&token_hex).expect("valid wire token");

    let payload = BenchTarget::ping_payload(19, 23);
    let receipt = alice
        .call_with_token(&mut chain, target.address, 0, &payload, token)
        .unwrap();
    assert!(receipt.status.is_success(), "{:?}", receipt.status);

    // v1 rule rotation still answers in the v1 vocabulary.
    let update = FrontRequest::SetRules {
        owner_secret: "owner-secret".into(),
        rules: RuleBook::deny_all(),
    };
    let response = post_json(server.addr(), &smacs_primitives::json::to_string(&update)).unwrap();
    assert!(matches!(
        smacs_primitives::json::from_str::<FrontResponse>(&response).unwrap(),
        FrontResponse::RulesUpdated
    ));
    let response = post_json(server.addr(), &body).unwrap();
    assert!(matches!(
        smacs_primitives::json::from_str::<FrontResponse>(&response).unwrap(),
        FrontResponse::Denied { .. }
    ));

    server.shutdown();
}

/// One-time issuance through a replicated counter cluster keeps indexes
/// unique across leader failure, and the tokens spend correctly on-chain.
#[test]
fn replicated_counter_backed_one_time_tokens() {
    let mut chain = Chain::default_chain();
    let owner = chain.funded_keypair(1, 10u128.pow(24));
    let alice = ClientWallet::new(chain.funded_keypair(2, 10u128.pow(24)));
    let toolkit = OwnerToolkit::new(owner, Keypair::from_seed(5_001));
    let (target, _) = toolkit
        .deploy_shielded(&mut chain, Arc::new(BenchTarget), &small_shield())
        .unwrap();

    let cluster = CounterCluster::new(3);
    let service = InProcessClient::new(
        TokenService::new(
            toolkit.ts_keypair().clone(),
            RuleBook::permissive(),
            TokenServiceConfig::default(),
        )
        .with_replicated_counter(cluster.clone()),
        "owner-secret",
        chain.pending_env().timestamp,
    );

    let payload = BenchTarget::ping_payload(1, 1);
    let request = TokenRequest::argument_token(
        target.address,
        alice.address(),
        BenchTarget::PING_SIG,
        vec![],
        payload.clone(),
    )
    .one_time();

    // Two tokens before the leader dies, two after: indexes stay unique,
    // all four spend exactly once.
    let mut tokens = Vec::new();
    tokens.push(service.issue(&request).unwrap());
    tokens.push(service.issue(&request).unwrap());
    cluster.kill(0);
    tokens.push(service.issue(&request).unwrap());
    tokens.push(service.issue(&request).unwrap());

    let mut seen = std::collections::HashSet::new();
    for token in &tokens {
        assert!(seen.insert(token.index), "index {} duplicated", token.index);
    }
    for token in tokens {
        let receipt = alice
            .call_with_token(&mut chain, target.address, 0, &payload, token)
            .unwrap();
        assert!(receipt.status.is_success(), "{:?}", receipt.status);
        // And never twice.
        let receipt = alice
            .call_with_token(&mut chain, target.address, 0, &payload, token)
            .unwrap();
        assert!(!receipt.status.is_success());
    }

    // Quorum loss fails closed.
    cluster.kill(1);
    assert_eq!(
        service.issue(&request).unwrap_err().code,
        ErrorCode::CounterUnavailable
    );
}

/// The Fig. 4 pipeline: a legacy Solidity source transforms into a
/// SMACS-enabled source whose semantics match the runtime shield's.
#[test]
fn adoption_tool_and_shield_agree_on_what_is_guarded() {
    let legacy = r#"
        contract Wallet {
            mapping(address=>uint) balance;
            function deposit() public payable {
                balance[msg.sender] += msg.value;
            }
            function sweep() external {
                drain();
            }
            function drain() public {
                balance[msg.sender] = 0;
            }
            function audit() internal {
                drain();
            }
        }
    "#;
    let unit = smacs::lang::parse(legacy).unwrap();
    let enabled = smacs::lang::smacs_enable(&unit);
    let contract = enabled.contract("Wallet").unwrap();

    // Every externally callable method is guarded…
    for name in ["deposit", "sweep", "drain"] {
        let f = contract.function(name).unwrap();
        assert_eq!(
            f.params.last().map(|p| p.name.as_str()),
            Some("token"),
            "{name} must take a token"
        );
    }
    // …and exactly the internally-called public method was split.
    assert!(contract.function("_drain").is_some());
    assert!(contract.function("_deposit").is_none());
    assert!(contract.function("_sweep").is_none());
    // The internal auditor calls the private half (no re-verification),
    // mirroring how the runtime shield only guards the message-call
    // boundary.
    let printed = smacs::lang::print_source(&enabled);
    let audit_src = &printed[printed.find("function audit").unwrap()..];
    assert!(audit_src.contains("_drain()"));
}
