//! Adversarial integration tests: every §VII-A attack class, including
//! randomized token-mutation attacks driven by proptest.

use proptest::prelude::*;
use smacs::chain::abi;
use smacs::chain::Chain;
use smacs::contracts::{Bank, BenchTarget, SmacsAwareAttacker};
use smacs::core::client::ClientWallet;
use smacs::core::owner::{OwnerToolkit, ShieldParams};
use smacs::crypto::Keypair;
use smacs::token::{Token, TokenRequest, TokenType};
use smacs::ts::{InProcessClient, RuleBook, TokenService, TokenServiceConfig, TsApi};
use std::sync::Arc;

fn small_shield() -> ShieldParams {
    ShieldParams {
        token_lifetime_secs: 3_600,
        max_tx_per_second: 0.35,
        disable_one_time: false,
    }
}

struct World {
    chain: Chain,
    api: InProcessClient,
    client: ClientWallet,
    target: smacs::primitives::Address,
}

fn world(seed: u64) -> World {
    let mut chain = Chain::default_chain();
    let owner = chain.funded_keypair(seed, 10u128.pow(24));
    let client = ClientWallet::new(chain.funded_keypair(seed + 1, 10u128.pow(24)));
    let toolkit = OwnerToolkit::new(owner, Keypair::from_seed(seed + 1_000));
    let (target, _) = toolkit
        .deploy_shielded(&mut chain, Arc::new(BenchTarget), &small_shield())
        .unwrap();
    let api = InProcessClient::new(
        TokenService::new(
            toolkit.ts_keypair().clone(),
            RuleBook::permissive(),
            TokenServiceConfig::default(),
        ),
        "owner-secret",
        chain.pending_env().timestamp,
    );
    World {
        chain,
        api,
        client,
        target: target.address,
    }
}

/// The adaptive (SMACS-aware) attacker of the re-entrancy case study is
/// stopped by one-time tokens even though it forwards and replays the
/// token correctly.
#[test]
fn adaptive_reentrancy_attacker_blocked_by_one_time_tokens() {
    let mut chain = Chain::default_chain();
    let owner = chain.funded_keypair(1, 10u128.pow(24));
    let victim = ClientWallet::new(chain.funded_keypair(2, 10u128.pow(24)));
    let attacker_eoa = chain.funded_keypair(3, 10u128.pow(24));
    let toolkit = OwnerToolkit::new(owner, Keypair::from_seed(2_000));
    let (bank, _) = toolkit
        .deploy_shielded(&mut chain, Arc::new(Bank), &small_shield())
        .unwrap();
    let now = chain.pending_env().timestamp;
    let ts = InProcessClient::new(
        TokenService::new(
            toolkit.ts_keypair().clone(),
            RuleBook::permissive(),
            TokenServiceConfig::default(),
        ),
        "owner-secret",
        now,
    );

    // Victim deposits.
    let deposit_payload = abi::encode_call("addBalance()", &[]);
    let req = TokenRequest::method_token(bank.address, victim.address(), "addBalance()");
    let token = ts.issue(&req).unwrap();
    victim
        .call_with_token(&mut chain, bank.address, 1_000, &deposit_payload, token)
        .unwrap();

    // Attacker contract deposits 2 wei through a forwarded token.
    let (attacker, _) = chain
        .deploy(
            &attacker_eoa,
            Arc::new(SmacsAwareAttacker::new(bank.address)),
        )
        .unwrap();
    chain.fund_account(attacker.address, 10);
    let req = TokenRequest::argument_token(
        bank.address,
        attacker_eoa.address(),
        "addBalance()",
        vec![],
        deposit_payload.clone(),
    );
    let token = ts.issue(&req).unwrap();
    let deposit_data = smacs::core::client::build_call_data(
        &abi::encode_call("deposit()", &[]),
        bank.address,
        token,
    );
    let nonce = chain.state().nonce(attacker_eoa.address());
    let tx = smacs::chain::Transaction::call(nonce, attacker.address, 2, deposit_data);
    assert!(chain
        .submit(tx.sign(&attacker_eoa))
        .unwrap()
        .status
        .is_success());

    // The strike with a one-time withdraw token: the replayed inner frame
    // finds its index spent → full revert, bank untouched.
    let withdraw_payload = abi::encode_call("withdraw()", &[]);
    let req = TokenRequest::argument_token(
        bank.address,
        attacker_eoa.address(),
        "withdraw()",
        vec![],
        withdraw_payload.clone(),
    )
    .one_time();
    let token = ts.issue(&req).unwrap();
    let strike_data = smacs::core::client::build_call_data(&withdraw_payload, bank.address, token);
    // Route through the attacker contract (its withdraw() forwards).
    let strike_data = {
        let (_, tokens) = smacs::token::split_tokens(&strike_data).unwrap();
        smacs::token::append_tokens(&abi::encode_call("withdraw()", &[]), &tokens)
    };
    let bank_before = chain.state().balance(bank.address);
    let nonce = chain.state().nonce(attacker_eoa.address());
    let tx = smacs::chain::Transaction::call(nonce, attacker.address, 0, strike_data);
    let receipt = chain.submit(tx.sign(&attacker_eoa)).unwrap();
    assert!(!receipt.status.is_success());
    assert_eq!(chain.state().balance(bank.address), bank_before);
}

/// §VII-A(b): resubmitting the exact same signed transaction is stopped by
/// the chain's nonce check; a *new* transaction reusing a non-one-time
/// token from the same origin is allowed (that is the documented semantics
/// — tokens authorize contexts, transactions handle replay).
#[test]
fn chain_level_replay_protection() {
    let mut w = world(10);
    let payload = BenchTarget::ping_payload(5, 5);
    let req = TokenRequest::super_token(w.target, w.client.address());
    let token = w.api.issue(&req).unwrap();
    let data = smacs::core::client::build_call_data(&payload, w.target, token);
    let nonce = w.chain.state().nonce(w.client.address());
    let tx = smacs::chain::Transaction::call(nonce, w.target, 0, data);
    let signed = tx.sign(w.client.keypair());
    assert!(w.chain.submit(signed.clone()).unwrap().status.is_success());
    // Byte-identical replay: rejected before execution.
    assert!(w.chain.submit(signed).is_err());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Substitution attacks, randomized: flip any byte of the token wire
    /// image and the call must fail (either at decode or at signature
    /// verification) — "any tiny change of the context … will be caught".
    #[test]
    fn prop_mutated_tokens_always_rejected(byte_idx in 0usize..Token::SIZE, bit in 0u8..8) {
        let mut w = world(20);
        let payload = BenchTarget::ping_payload(2, 2);
        let req = TokenRequest::argument_token(
            w.target,
            w.client.address(),
            BenchTarget::PING_SIG,
            vec![],
            payload.clone(),
        );
        let token = w.api.issue(&req).unwrap();

        let mut wire = token.to_bytes();
        wire[byte_idx] ^= 1 << bit;

        // Rebuild calldata with the mutated token bytes spliced in.
        let tokens = smacs::token::TokenArray::new();
        let mut data = smacs::token::append_tokens(&payload, &tokens);
        // payload ‖ (empty array) ‖ count — now hand-craft a 1-entry array.
        data.truncate(payload.len());
        data.extend_from_slice(w.target.as_bytes());
        data.extend_from_slice(&wire);
        data.extend_from_slice(&1u32.to_be_bytes());

        let receipt = w.client.send(&mut w.chain, w.target, 0, data).unwrap();
        prop_assert!(
            !receipt.status.is_success(),
            "mutated byte {byte_idx} bit {bit} was accepted"
        );
        // The inner method must never have run.
        prop_assert_eq!(
            w.chain.state().storage_get_u256(w.target, smacs::primitives::H256::ZERO),
            smacs::primitives::U256::ZERO
        );
    }

    /// Context-substitution, randomized: a token issued for one context
    /// never authorizes a different sender, contract, method, or payload.
    #[test]
    fn prop_context_swaps_rejected(which in 0usize..4) {
        let mut w = world(30);
        let payload = BenchTarget::ping_payload(7, 8);
        let req = TokenRequest::argument_token(
            w.target,
            w.client.address(),
            BenchTarget::PING_SIG,
            vec![],
            payload.clone(),
        );
        let token = w.api.issue(&req).unwrap();

        let receipt = match which {
            0 => {
                // Different sender.
                let mallory = ClientWallet::new(w.chain.funded_keypair(777, 10u128.pow(24)));
                mallory.call_with_token(&mut w.chain, w.target, 0, &payload, token).unwrap()
            }
            1 => {
                // Different payload (arguments swapped).
                let other = BenchTarget::ping_payload(8, 7);
                w.client.call_with_token(&mut w.chain, w.target, 0, &other, token).unwrap()
            }
            2 => {
                // Different method.
                let other = abi::encode_call("total()", &[]);
                w.client.call_with_token(&mut w.chain, w.target, 0, &other, token).unwrap()
            }
            _ => {
                // Downgrade the declared type byte to Super (mutation of
                // `ttype` while keeping the signature).
                let mut forged = token;
                forged.ttype = TokenType::Super;
                w.client.call_with_token(&mut w.chain, w.target, 0, &payload, forged).unwrap()
            }
        };
        prop_assert!(!receipt.status.is_success(), "swap {which} accepted");
    }
}
