//! Adversarial integration tests: every §VII-A attack class, including
//! randomized token-mutation attacks driven by proptest.

use proptest::prelude::*;
use smacs::chain::abi;
use smacs::chain::Chain;
use smacs::contracts::{
    Airdrop, Bank, BenchTarget, PriceOracle, SessionGame, SmacsAmm, SmacsAwareAttacker,
};
use smacs::core::client::ClientWallet;
use smacs::core::owner::{OwnerToolkit, ShieldParams};
use smacs::crypto::Keypair;
use smacs::primitives::U256;
use smacs::token::{ArgBinding, Token, TokenRequest, TokenType};
use smacs::ts::{ErrorCode, InProcessClient, RuleBook, TokenService, TokenServiceConfig, TsApi};
use smacs_driver::scenario::{self, OWNER_SECRET};
use std::sync::Arc;

fn small_shield() -> ShieldParams {
    ShieldParams {
        token_lifetime_secs: 3_600,
        max_tx_per_second: 0.35,
        disable_one_time: false,
    }
}

struct World {
    chain: Chain,
    api: InProcessClient,
    client: ClientWallet,
    target: smacs::primitives::Address,
}

fn world(seed: u64) -> World {
    let mut chain = Chain::default_chain();
    let owner = chain.funded_keypair(seed, 10u128.pow(24));
    let client = ClientWallet::new(chain.funded_keypair(seed + 1, 10u128.pow(24)));
    let toolkit = OwnerToolkit::new(owner, Keypair::from_seed(seed + 1_000));
    let (target, _) = toolkit
        .deploy_shielded(&mut chain, Arc::new(BenchTarget), &small_shield())
        .unwrap();
    let api = InProcessClient::new(
        TokenService::new(
            toolkit.ts_keypair().clone(),
            RuleBook::permissive(),
            TokenServiceConfig::default(),
        ),
        "owner-secret",
        chain.pending_env().timestamp,
    );
    World {
        chain,
        api,
        client,
        target: target.address,
    }
}

/// The adaptive (SMACS-aware) attacker of the re-entrancy case study is
/// stopped by one-time tokens even though it forwards and replays the
/// token correctly.
#[test]
fn adaptive_reentrancy_attacker_blocked_by_one_time_tokens() {
    let mut chain = Chain::default_chain();
    let owner = chain.funded_keypair(1, 10u128.pow(24));
    let victim = ClientWallet::new(chain.funded_keypair(2, 10u128.pow(24)));
    let attacker_eoa = chain.funded_keypair(3, 10u128.pow(24));
    let toolkit = OwnerToolkit::new(owner, Keypair::from_seed(2_000));
    let (bank, _) = toolkit
        .deploy_shielded(&mut chain, Arc::new(Bank), &small_shield())
        .unwrap();
    let now = chain.pending_env().timestamp;
    let ts = InProcessClient::new(
        TokenService::new(
            toolkit.ts_keypair().clone(),
            RuleBook::permissive(),
            TokenServiceConfig::default(),
        ),
        "owner-secret",
        now,
    );

    // Victim deposits.
    let deposit_payload = abi::encode_call("addBalance()", &[]);
    let req = TokenRequest::method_token(bank.address, victim.address(), "addBalance()");
    let token = ts.issue(&req).unwrap();
    victim
        .call_with_token(&mut chain, bank.address, 1_000, &deposit_payload, token)
        .unwrap();

    // Attacker contract deposits 2 wei through a forwarded token.
    let (attacker, _) = chain
        .deploy(
            &attacker_eoa,
            Arc::new(SmacsAwareAttacker::new(bank.address)),
        )
        .unwrap();
    chain.fund_account(attacker.address, 10);
    let req = TokenRequest::argument_token(
        bank.address,
        attacker_eoa.address(),
        "addBalance()",
        vec![],
        deposit_payload.clone(),
    );
    let token = ts.issue(&req).unwrap();
    let deposit_data = smacs::core::client::build_call_data(
        &abi::encode_call("deposit()", &[]),
        bank.address,
        token,
    );
    let nonce = chain.state().nonce(attacker_eoa.address());
    let tx = smacs::chain::Transaction::call(nonce, attacker.address, 2, deposit_data);
    assert!(chain
        .submit(tx.sign(&attacker_eoa))
        .unwrap()
        .status
        .is_success());

    // The strike with a one-time withdraw token: the replayed inner frame
    // finds its index spent → full revert, bank untouched.
    let withdraw_payload = abi::encode_call("withdraw()", &[]);
    let req = TokenRequest::argument_token(
        bank.address,
        attacker_eoa.address(),
        "withdraw()",
        vec![],
        withdraw_payload.clone(),
    )
    .one_time();
    let token = ts.issue(&req).unwrap();
    let strike_data = smacs::core::client::build_call_data(&withdraw_payload, bank.address, token);
    // Route through the attacker contract (its withdraw() forwards).
    let strike_data = {
        let (_, tokens) = smacs::token::split_tokens(&strike_data).unwrap();
        smacs::token::append_tokens(&abi::encode_call("withdraw()", &[]), &tokens)
    };
    let bank_before = chain.state().balance(bank.address);
    let nonce = chain.state().nonce(attacker_eoa.address());
    let tx = smacs::chain::Transaction::call(nonce, attacker.address, 0, strike_data);
    let receipt = chain.submit(tx.sign(&attacker_eoa)).unwrap();
    assert!(!receipt.status.is_success());
    assert_eq!(chain.state().balance(bank.address), bank_before);
}

/// §VII-A(b): resubmitting the exact same signed transaction is stopped by
/// the chain's nonce check; a *new* transaction reusing a non-one-time
/// token from the same origin is allowed (that is the documented semantics
/// — tokens authorize contexts, transactions handle replay).
#[test]
fn chain_level_replay_protection() {
    let mut w = world(10);
    let payload = BenchTarget::ping_payload(5, 5);
    let req = TokenRequest::super_token(w.target, w.client.address());
    let token = w.api.issue(&req).unwrap();
    let data = smacs::core::client::build_call_data(&payload, w.target, token);
    let nonce = w.chain.state().nonce(w.client.address());
    let tx = smacs::chain::Transaction::call(nonce, w.target, 0, data);
    let signed = tx.sign(w.client.keypair());
    assert!(w.chain.submit(signed.clone()).unwrap().status.is_success());
    // Byte-identical replay: rejected before execution.
    assert!(w.chain.submit(signed).is_err());
}

// ---- scenario-corpus rule shapes (PR 7) --------------------------------
//
// One allowed path and one denied path per rule shape the corpus
// introduces: operator whitelists, argument value bounds, cross-contract
// composition, session expiry, and one-time claims.

fn scenario_api(world: &scenario::ScenarioWorld) -> InProcessClient {
    InProcessClient::new(world.token_service(), OWNER_SECRET, world.now())
}

/// Oracle-update authorization: the method-token operator whitelist admits
/// a listed operator's on-chain post and refuses to mint for an outsider —
/// the contract itself holds no operator list.
#[test]
fn oracle_operator_whitelist_gates_issuance_not_the_contract() {
    let mut world = scenario::build("oracle", 40).unwrap();
    let api = scenario_api(&world);
    let oracle = world.contract("oracle").unwrap();

    // Allowed: wallet 0 is whitelisted for postPrice.
    let operator = &world.wallets[0];
    let req = TokenRequest::method_token(oracle, operator.address(), PriceOracle::POST_SIG);
    let token = api.issue(&req).unwrap();
    let receipt = operator
        .call_with_token(
            &mut world.chain,
            oracle,
            0,
            &PriceOracle::post_payload(42_000),
            token,
        )
        .unwrap();
    assert!(receipt.status.is_success(), "{:?}", receipt.revert_reason());
    assert_eq!(
        PriceOracle::price(&world.chain, oracle),
        U256::from_u64(42_000)
    );

    // Denied: wallet 5 is not an operator — the mint itself fails.
    let outsider = world.wallets[5].address();
    let req = TokenRequest::method_token(oracle, outsider, PriceOracle::POST_SIG);
    let err = api.issue(&req).unwrap_err();
    assert_eq!(err.code, ErrorCode::RuleViolation);
}

/// Argument-token price bounds: a swap with a real `minOut` mints and
/// executes; `minOut = 0` (unbounded slippage) is refused per-value at the
/// TS with no contract change.
#[test]
fn amm_argument_bounds_allow_bounded_swaps_and_deny_zero_min_out() {
    let mut world = scenario::build("amm", 41).unwrap();
    let api = scenario_api(&world);
    let amm = world.contract("amm").unwrap();

    // Allowed: the scenario's first issuance template is a bounded swap.
    let trader = &world.wallets[0];
    let token = api.issue(&world.requests[0]).unwrap();
    let receipt = trader
        .call_with_token(
            &mut world.chain,
            amm,
            0,
            &SmacsAmm::swap_payload(100, 1),
            token,
        )
        .unwrap();
    assert!(receipt.status.is_success(), "{:?}", receipt.revert_reason());
    assert!(SmacsAmm::balance_y(&world.chain, amm, trader.address()) > U256::ZERO);

    // Denied: same sender, same method, minOut bound to zero.
    let bad = TokenRequest::argument_token(
        amm,
        trader.address(),
        SmacsAmm::SWAP_SIG,
        vec![
            ArgBinding {
                name: "arg0".into(),
                value: "100".into(),
            },
            ArgBinding {
                name: "arg1".into(),
                value: "0".into(),
            },
        ],
        SmacsAmm::swap_payload(100, 0),
    );
    let err = api.issue(&bad).unwrap_err();
    assert_eq!(err.code, ErrorCode::RuleViolation);
}

/// Cross-contract composition: `leverageSwap` forwards the transaction's
/// token array into the AMM, so the borrower needs a valid token for
/// *each* shielded hop — and the inner hop's check still bites when its
/// token is missing.
#[test]
fn amm_composition_requires_a_token_per_shielded_hop() {
    let mut world = scenario::build("amm", 42).unwrap();
    let api = scenario_api(&world);
    let amm = world.contract("amm").unwrap();
    let pool = world.contract("pool").unwrap();
    let borrower = &world.wallets[1];

    let leverage = smacs::contracts::LendingPool::leverage_payload(200, 1);
    let pool_req = TokenRequest::method_token(
        pool,
        borrower.address(),
        smacs::contracts::LendingPool::LEVERAGE_SIG,
    );
    let swap_req = TokenRequest::argument_token(
        amm,
        borrower.address(),
        SmacsAmm::SWAP_SIG,
        vec![
            ArgBinding {
                name: "arg0".into(),
                value: "200".into(),
            },
            ArgBinding {
                name: "arg1".into(),
                value: "1".into(),
            },
        ],
        SmacsAmm::swap_payload(200, 1),
    );

    // Allowed: tokens for both hops ride the same transaction.
    let pool_token = api.issue(&pool_req).unwrap();
    let swap_token = api.issue(&swap_req).unwrap();
    let receipt = borrower
        .call_with_tokens(
            &mut world.chain,
            pool,
            0,
            &leverage,
            &[(pool, pool_token), (amm, swap_token)],
        )
        .unwrap();
    assert!(receipt.status.is_success(), "{:?}", receipt.revert_reason());
    assert_eq!(
        smacs::contracts::LendingPool::debt(&world.chain, pool, borrower.address()),
        U256::from_u64(200)
    );
    // The swap credited the transaction origin (the borrower), not the pool.
    assert!(SmacsAmm::balance_y(&world.chain, amm, borrower.address()) > U256::ZERO);

    // Denied: the pool hop alone — the forwarded inner call reaches the
    // AMM's shield with no token for it and the whole transaction reverts.
    let pool_token = api.issue(&pool_req).unwrap();
    let debt_before = smacs::contracts::LendingPool::debt(&world.chain, pool, borrower.address());
    let receipt = borrower
        .call_with_tokens(&mut world.chain, pool, 0, &leverage, &[(pool, pool_token)])
        .unwrap();
    assert!(!receipt.status.is_success());
    assert_eq!(
        smacs::contracts::LendingPool::debt(&world.chain, pool, borrower.address()),
        debt_before,
        "failed composition must not leave partial debt"
    );
}

/// Session tokens: the game TS issues 120-second method tokens. Within the
/// session the player moves freely; after expiry the same token dies at
/// the shield and a re-mint is required.
#[test]
fn game_session_tokens_expire_on_chain() {
    let mut world = scenario::build("game", 43).unwrap();
    let api = scenario_api(&world);
    let game = world.contract("game").unwrap();
    let player = &world.wallets[0];

    // Join with an argument token (exact-calldata, the REPL's default).
    let join = SessionGame::join_payload();
    let join_req = TokenRequest::argument_token(
        game,
        player.address(),
        SessionGame::JOIN_SIG,
        vec![],
        join.clone(),
    );
    let token = api.issue(&join_req).unwrap();
    let receipt = player
        .call_with_token(&mut world.chain, game, 0, &join, token)
        .unwrap();
    assert!(receipt.status.is_success(), "{:?}", receipt.revert_reason());

    // Allowed: play within the 120-second session.
    let session = api.issue(&world.requests[0]).unwrap();
    let receipt = player
        .call_with_token(
            &mut world.chain,
            game,
            0,
            &SessionGame::play_payload(60),
            session,
        )
        .unwrap();
    assert!(receipt.status.is_success(), "{:?}", receipt.revert_reason());
    assert_eq!(
        SessionGame::score(&world.chain, game, player.address()),
        U256::from_u64(60)
    );

    // Denied: the same session token after the chain clock passes expiry.
    world.chain.advance_time(7_200);
    let receipt = player
        .call_with_token(
            &mut world.chain,
            game,
            0,
            &SessionGame::play_payload(10),
            session,
        )
        .unwrap();
    assert!(!receipt.status.is_success(), "expired session still played");
    assert_eq!(
        SessionGame::score(&world.chain, game, player.address()),
        U256::from_u64(60)
    );
}

/// One-time claims: a claim token spends exactly once — replaying the very
/// same token in a fresh transaction dies at the shield's index check.
#[test]
fn airdrop_one_time_claim_tokens_spend_exactly_once() {
    let mut world = scenario::build("airdrop", 44).unwrap();
    let api = scenario_api(&world);
    let drop = world.contract("airdrop").unwrap();
    let claimer = &world.wallets[0];

    // Allowed: first claim with a one-time token.
    let token = api.issue(&world.requests[0]).unwrap();
    assert!(token.index > -1, "claim tokens must be one-time");
    let receipt = claimer
        .call_with_token(&mut world.chain, drop, 0, &Airdrop::claim_payload(), token)
        .unwrap();
    assert!(receipt.status.is_success(), "{:?}", receipt.revert_reason());
    assert_eq!(
        Airdrop::balance(&world.chain, drop, claimer.address()),
        U256::from_u64(100)
    );

    // Denied: replaying the spent token in a new transaction.
    let receipt = claimer
        .call_with_token(&mut world.chain, drop, 0, &Airdrop::claim_payload(), token)
        .unwrap();
    assert!(!receipt.status.is_success(), "one-time token replayed");
    assert_eq!(
        Airdrop::balance(&world.chain, drop, claimer.address()),
        U256::from_u64(100),
        "replay must not double-credit"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Substitution attacks, randomized: flip any byte of the token wire
    /// image and the call must fail (either at decode or at signature
    /// verification) — "any tiny change of the context … will be caught".
    #[test]
    fn prop_mutated_tokens_always_rejected(byte_idx in 0usize..Token::SIZE, bit in 0u8..8) {
        let mut w = world(20);
        let payload = BenchTarget::ping_payload(2, 2);
        let req = TokenRequest::argument_token(
            w.target,
            w.client.address(),
            BenchTarget::PING_SIG,
            vec![],
            payload.clone(),
        );
        let token = w.api.issue(&req).unwrap();

        let mut wire = token.to_bytes();
        wire[byte_idx] ^= 1 << bit;

        // Rebuild calldata with the mutated token bytes spliced in.
        let tokens = smacs::token::TokenArray::new();
        let mut data = smacs::token::append_tokens(&payload, &tokens);
        // payload ‖ (empty array) ‖ count — now hand-craft a 1-entry array.
        data.truncate(payload.len());
        data.extend_from_slice(w.target.as_bytes());
        data.extend_from_slice(&wire);
        data.extend_from_slice(&1u32.to_be_bytes());

        let receipt = w.client.send(&mut w.chain, w.target, 0, data).unwrap();
        prop_assert!(
            !receipt.status.is_success(),
            "mutated byte {byte_idx} bit {bit} was accepted"
        );
        // The inner method must never have run.
        prop_assert_eq!(
            w.chain.state().storage_get_u256(w.target, smacs::primitives::H256::ZERO),
            smacs::primitives::U256::ZERO
        );
    }

    /// Context-substitution, randomized: a token issued for one context
    /// never authorizes a different sender, contract, method, or payload.
    #[test]
    fn prop_context_swaps_rejected(which in 0usize..4) {
        let mut w = world(30);
        let payload = BenchTarget::ping_payload(7, 8);
        let req = TokenRequest::argument_token(
            w.target,
            w.client.address(),
            BenchTarget::PING_SIG,
            vec![],
            payload.clone(),
        );
        let token = w.api.issue(&req).unwrap();

        let receipt = match which {
            0 => {
                // Different sender.
                let mallory = ClientWallet::new(w.chain.funded_keypair(777, 10u128.pow(24)));
                mallory.call_with_token(&mut w.chain, w.target, 0, &payload, token).unwrap()
            }
            1 => {
                // Different payload (arguments swapped).
                let other = BenchTarget::ping_payload(8, 7);
                w.client.call_with_token(&mut w.chain, w.target, 0, &other, token).unwrap()
            }
            2 => {
                // Different method.
                let other = abi::encode_call("total()", &[]);
                w.client.call_with_token(&mut w.chain, w.target, 0, &other, token).unwrap()
            }
            _ => {
                // Downgrade the declared type byte to Super (mutation of
                // `ttype` while keeping the signature).
                let mut forged = token;
                forged.ttype = TokenType::Super;
                w.client.call_with_token(&mut w.chain, w.target, 0, &payload, forged).unwrap()
            }
        };
        prop_assert!(!receipt.status.is_success(), "swap {which} accepted");
    }
}
