//! Quickstart: the complete SMACS loop in one file.
//!
//! 1. The owner generates the TS keypair and deploys a SMACS-enabled
//!    contract with `pk_TS` preloaded.
//! 2. The Token Service starts with a sender whitelist.
//! 3. A whitelisted client requests a token and calls the contract.
//! 4. A non-whitelisted client is denied at the TS, and a stolen token is
//!    rejected on-chain.
//!
//! Run with: `cargo run --example quickstart`

use smacs::chain::Chain;
use smacs::contracts::BenchTarget;
use smacs::core::client::ClientWallet;
use smacs::core::fetcher::TokenFetcher;
use smacs::core::owner::{OwnerToolkit, ShieldParams};
use smacs::token::{TokenRequest, TokenType};
use smacs::ts::{InProcessClient, ListPolicy, RuleBook, TokenService, TokenServiceConfig, TsApi};
use std::sync::Arc;

fn main() {
    // --- 1. Chain, owner, and deployment -------------------------------
    let mut chain = Chain::default_chain();
    let owner = chain.funded_keypair(1, 10u128.pow(24));
    let alice = ClientWallet::new(chain.funded_keypair(2, 10u128.pow(24)));
    let mallory = ClientWallet::new(chain.funded_keypair(3, 10u128.pow(24)));

    let toolkit = OwnerToolkit::new(owner, smacs::crypto::Keypair::from_seed(1_000));
    let (target, receipt) = toolkit
        .deploy_shielded(
            &mut chain,
            Arc::new(BenchTarget),
            &ShieldParams {
                token_lifetime_secs: 3_600,
                max_tx_per_second: 0.35,
                disable_one_time: false,
            },
        )
        .expect("deployment");
    println!("deployed SMACS-enabled BenchTarget at {}", target.address);
    println!("  deployment gas: {}", receipt.gas_used);

    // --- 2. Token Service with a whitelist -----------------------------
    let mut rules = RuleBook::deny_all();
    let mut whitelist = ListPolicy::deny_all();
    whitelist.insert(alice.address().to_hex());
    rules.rules_mut(TokenType::Method).sender = Some(whitelist);
    let now = chain.pending_env().timestamp;
    let ts = InProcessClient::new(
        TokenService::new(
            toolkit.ts_keypair().clone(),
            rules,
            TokenServiceConfig::default(),
        ),
        "owner-secret",
        now,
    );
    println!("TS online; pk_TS = {}", ts.service().ts_address());

    // --- 3. Alice: request a method token, call the contract -----------
    // Tokens flow through the transport-agnostic TsApi; the TokenFetcher
    // caches them per (contract, type, method) so repeat calls skip the TS.
    let fetcher = TokenFetcher::new(std::sync::Arc::new(ts.clone()));
    let request =
        TokenRequest::method_token(target.address, alice.address(), BenchTarget::PING_SIG);
    let token = fetcher.fetch(&request, now).expect("alice is whitelisted");
    println!(
        "alice got a {} token (expires {})",
        token.ttype, token.expire
    );

    let payload = BenchTarget::ping_payload(20, 22);
    let receipt = alice
        .call_with_token(&mut chain, target.address, 0, &payload, token)
        .expect("submit");
    println!(
        "alice's call: {:?}, gas {}, verify share {}",
        receipt.status,
        receipt.gas_used,
        receipt.breakdown.section("verify")
    );
    assert!(receipt.status.is_success());

    // --- 4. Mallory: denied off-chain, and on-chain --------------------
    let request =
        TokenRequest::method_token(target.address, mallory.address(), BenchTarget::PING_SIG);
    let denied = ts.issue(&request);
    println!(
        "mallory's token request: {:?}",
        denied.err().map(|e| format!("{} ({})", e.message, e.code))
    );

    // Mallory intercepts alice's token and tries to use it herself: the
    // signature binds tx.origin, so the contract rejects it.
    let receipt = mallory
        .call_with_token(&mut chain, target.address, 0, &payload, token)
        .expect("submit");
    println!("mallory with a stolen token: {:?}", receipt.status);
    assert_eq!(
        receipt.revert_reason(),
        Some("SMACS: invalid token signature")
    );

    println!("quickstart complete ✔");
}
