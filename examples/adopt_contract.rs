//! The Fig. 4 adoption tool: transform a legacy Solidity contract into its
//! SMACS-enabled equivalent, source to source.
//!
//! Run with: `cargo run --example adopt_contract`

use smacs::lang::{parse, print_source, smacs_enable};

const LEGACY: &str = r#"
contract Legacy {
    uint counter;
    function f() external {
        h();
        g();
    }
    function h() public {
        g();
    }
    function g() private {
        counter += 1;
    }
}
"#;

fn main() {
    println!("--- legacy source (Fig. 4, left) ---");
    println!("{}", LEGACY.trim());

    let unit = parse(LEGACY).expect("legacy parses");
    let enabled = smacs_enable(&unit);
    let out = print_source(&enabled);

    println!("\n--- SMACS-enabled source (Fig. 4, right) ---");
    println!("{}", out.trim());

    // What the tool guarantees:
    let contract = enabled.contract("Legacy").expect("contract kept");
    // 1. Every public/external method now takes a token and verifies it.
    for name in ["f", "h"] {
        let f = contract.function(name).unwrap();
        assert_eq!(f.params.last().unwrap().name, "token");
    }
    // 2. The internally-called public method h was split: _h carries the
    //    body, h verifies and delegates; f's internal call goes to _h.
    assert!(contract.function("_h").is_some());
    assert!(out.contains("_h()"));
    // 3. Private methods are untouched.
    assert!(contract.function("g").unwrap().params.is_empty());
    // 4. The output is valid source: it reparses to the same AST.
    assert_eq!(parse(&out).expect("output parses"), enabled);

    println!("\nadoption tool checks passed ✔");
}
