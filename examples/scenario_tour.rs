//! A tour of the scenario subsystem: drive every corpus scenario through
//! the REPL engine, then put one under open-loop load.
//!
//! Run with: `cargo run --example scenario_tour`

use smacs::ts::InProcessClient;
use smacs_driver::loadgen::{run_open_loop, Arrivals, LoadConfig};
use smacs_driver::scenario::{self, OWNER_SECRET, SCENARIOS};
use smacs_driver::Repl;

fn run(repl: &mut Repl, line: &str) {
    match repl.eval(line) {
        Ok(Some(out)) if !out.is_empty() => println!("smacs> {line}\n{out}"),
        Ok(_) => println!("smacs> {line}"),
        Err(err) => println!("smacs> {line}\nerror: {err}"),
    }
}

fn main() {
    // ---- every scenario loads through the REPL engine -----------------
    for spec in SCENARIOS {
        let mut repl = Repl::new(1);
        run(&mut repl, &format!("scenario {}", spec.name));
    }

    // ---- the AMM story: price bounds + composition --------------------
    println!("\n=== amm: argument-token price bounds ===");
    let mut repl = Repl::new(2);
    run(&mut repl, "scenario amm");
    // A bounded swap is authorized; minOut=0 is blacklisted by the ACR.
    run(&mut repl, "call w0 amm \"swap(uint256,uint256)\" (100, 90)");
    run(&mut repl, "call w0 amm \"swap(uint256,uint256)\" (100, 0)");

    // ---- open-loop load over the oracle scenario ----------------------
    println!("\n=== oracle under open-loop load ===");
    let world = scenario::build("oracle", 5).unwrap();
    let requests = world.requests.clone();
    let api = InProcessClient::new(world.token_service(), OWNER_SECRET, world.now());
    let report = run_open_loop(
        &api,
        &requests,
        &LoadConfig {
            offered_rps: 2_000,
            events: 400,
            senders: 2,
            arrivals: Arrivals::Poisson,
            seed: 42,
        },
    );
    println!(
        "offered {} rps, achieved {}/s over {} events ({} errors)",
        report.offered_rps, report.achieved_per_sec, report.completed, report.errors
    );
    println!(
        "issue latency p50={} µs p99={} µs p999={} µs",
        report.issue.p50_ns / 1_000,
        report.issue.p99_ns / 1_000,
        report.issue.p999_ns / 1_000
    );
    println!(
        "end-to-end   p50={} µs p99={} µs p999={} µs (from scheduled arrival)",
        report.e2e.p50_ns / 1_000,
        report.e2e.p99_ns / 1_000,
        report.e2e.p999_ns / 1_000
    );
}
