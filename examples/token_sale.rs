//! The paper's motivating scenario (§II-D): a token sale restricted to
//! approved users — Bluzelle paid 9.345 ETH to whitelist 7 473 users
//! on-chain; SMACS moves the whitelist off-chain for free.
//!
//! This example runs both designs side by side and prints the cost gap.
//!
//! Run with: `cargo run --example token_sale`

use smacs::chain::gas::gas_to_usd;
use smacs::chain::Chain;
use smacs::contracts::{OnChainWhitelistSale, SmacsSale};
use smacs::core::client::ClientWallet;
use smacs::core::owner::{OwnerToolkit, ShieldParams};
use smacs::primitives::Address;
use smacs::token::{TokenRequest, TokenType};
use smacs::ts::{InProcessClient, ListPolicy, RuleBook, TokenService, TokenServiceConfig, TsApi};
use std::sync::Arc;

const USERS: usize = 200; // scaled-down cohort; costs extrapolate linearly

fn main() {
    let mut chain = Chain::default_chain();
    let owner = chain.funded_keypair(1, 10u128.pow(26));
    let buyers: Vec<ClientWallet> = (0..USERS)
        .map(|i| ClientWallet::new(chain.funded_keypair(100 + i as u64, 10u128.pow(24))))
        .collect();

    // ---------- design A: on-chain whitelist (the paper's baseline) ----
    let (baseline, _) = chain
        .deploy(&owner, Arc::new(OnChainWhitelistSale::new(owner.address())))
        .expect("deploy baseline");
    let mut whitelist_gas = 0u64;
    for buyer in &buyers {
        let r = chain
            .call_contract(
                &owner,
                baseline.address,
                0,
                OnChainWhitelistSale::add_payload(buyer.address()),
            )
            .expect("whitelist tx");
        whitelist_gas += r.gas_used;
    }
    println!(
        "on-chain whitelist: {USERS} users, {whitelist_gas} gas (${:.2} at 1 gwei)",
        gas_to_usd(whitelist_gas)
    );
    let per_user = whitelist_gas as f64 / USERS as f64;
    println!(
        "  extrapolated to Bluzelle's 7473 users at 40 gwei: {:.2} ETH (paper: 9.345 ETH)",
        per_user * 7_473.0 * 40e-9
    );

    // A whitelisted buyer purchases.
    let r = chain
        .call_contract(
            buyers[0].keypair(),
            baseline.address,
            5_000,
            OnChainWhitelistSale::buy_payload(),
        )
        .expect("buy");
    assert!(r.status.is_success());

    // ---------- design B: SMACS (whitelist lives in the TS) ------------
    let toolkit = OwnerToolkit::new(owner, smacs::crypto::Keypair::from_seed(2_000));
    let (sale, _) = toolkit
        .deploy_shielded(
            &mut chain,
            Arc::new(SmacsSale),
            &ShieldParams {
                token_lifetime_secs: 3_600,
                max_tx_per_second: 0.35,
                disable_one_time: false,
            },
        )
        .expect("deploy smacs sale");

    let mut rules = RuleBook::deny_all();
    let mut senders = ListPolicy::deny_all();
    for buyer in &buyers {
        senders.insert(buyer.address().to_hex()); // free: no transaction
    }
    rules.rules_mut(TokenType::Method).sender = Some(senders);
    let now = chain.pending_env().timestamp;
    let ts = InProcessClient::new(
        TokenService::new(
            toolkit.ts_keypair().clone(),
            rules,
            TokenServiceConfig::default(),
        ),
        "owner-secret",
        now,
    );
    println!("\nSMACS whitelist: {USERS} users registered in the TS for 0 gas");

    // Every buyer purchases with a method token — issued in one batched
    // round trip (the v2 `issue_batch` op) instead of {USERS} single ones.
    let requests: Vec<TokenRequest> = buyers
        .iter()
        .map(|buyer| TokenRequest::method_token(sale.address, buyer.address(), "buy()"))
        .collect();
    let tokens = ts.issue_batch(&requests).expect("batch envelope");
    let mut buy_gas = 0u64;
    for (buyer, token) in buyers.iter().zip(tokens) {
        let token = token.expect("whitelisted buyer");
        let r = buyer
            .call_with_token(
                &mut chain,
                sale.address,
                5_000,
                &SmacsSale::buy_payload(),
                token,
            )
            .expect("buy");
        assert!(r.status.is_success(), "{:?}", r.status);
        buy_gas += r.gas_used;
    }
    println!(
        "  {USERS} purchases, avg {} gas each (token verification included)",
        buy_gas / USERS as u64
    );

    // A non-whitelisted account cannot even get a token.
    let outsider = ClientWallet::new(chain.funded_keypair(9_999, 10u128.pow(24)));
    let req = TokenRequest::method_token(sale.address, outsider.address(), "buy()");
    assert!(ts.issue(&req).is_err());
    println!("  outsider denied at the TS — no gas spent at all");

    // Dynamic update: revoke buyer 0 at runtime, no contract change.
    ts.service().update_rules(|book| {
        if let Some(policy) = &mut book.rules_mut(TokenType::Method).sender {
            policy.remove(&buyers[0].address().to_hex());
        }
    });
    let req = TokenRequest::method_token(sale.address, buyers[0].address(), "buy()");
    assert!(ts.issue(&req).is_err());
    println!("  buyer revoked at runtime for 0 gas (baseline: another on-chain tx)");

    // Also works the other way: the baseline's unsold check still works.
    let unknown = Address::from_low_u64(0xFFFF);
    let r = chain.dry_run(
        unknown,
        baseline.address,
        5_000,
        OnChainWhitelistSale::buy_payload(),
    );
    assert!(r.0.is_err());
    println!("\ntoken sale comparison complete ✔");
}
