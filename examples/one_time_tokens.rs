//! One-time tokens and the Alg. 2 bitmap: single use, window slides,
//! token misses, and the sizing rule.
//!
//! Run with: `cargo run --example one_time_tokens`

use smacs::chain::Chain;
use smacs::contracts::BenchTarget;
use smacs::core::bitmap::{bitmap_bits_for, BitmapState};
use smacs::core::client::ClientWallet;
use smacs::core::owner::{OwnerToolkit, ShieldParams};
use smacs::token::TokenRequest;
use smacs::ts::{InProcessClient, RuleBook, TokenService, TokenServiceConfig, TsApi};
use std::sync::Arc;

fn main() {
    // --- sizing (§IV-C): lifetime × peak rate ---------------------------
    println!("bitmap sizing (token_lifetime × max_tx_per_second):");
    for (rate, label) in [
        (35.0, "Ethereum peak (35 tx/s)"),
        (3.5, "busy dapp"),
        (0.35, "quiet dapp"),
    ] {
        let bits = bitmap_bits_for(3_600, rate);
        println!(
            "  1 h lifetime at {label}: {bits} bits = {:.3} KB",
            bits as f64 / 8192.0
        );
    }

    // --- live single-use semantics --------------------------------------
    let mut chain = Chain::default_chain();
    let owner = chain.funded_keypair(1, 10u128.pow(24));
    let client = ClientWallet::new(chain.funded_keypair(2, 10u128.pow(24)));
    let toolkit = OwnerToolkit::new(owner, smacs::crypto::Keypair::from_seed(1_000));
    let (target, _) = toolkit
        .deploy_shielded(
            &mut chain,
            Arc::new(BenchTarget),
            &ShieldParams {
                token_lifetime_secs: 3_600,
                max_tx_per_second: 0.35,
                disable_one_time: false,
            },
        )
        .expect("deploy");
    let ts = InProcessClient::new(
        TokenService::new(
            toolkit.ts_keypair().clone(),
            RuleBook::permissive(),
            TokenServiceConfig::default(),
        ),
        "owner-secret",
        chain.pending_env().timestamp,
    );

    let payload = BenchTarget::ping_payload(1, 2);
    let req = TokenRequest::argument_token(
        target.address,
        client.address(),
        BenchTarget::PING_SIG,
        vec![],
        payload.clone(),
    )
    .one_time();
    let token = ts.issue(&req).expect("token");
    println!(
        "\nissued one-time argument token with index {}",
        token.index
    );

    let r = client
        .call_with_token(&mut chain, target.address, 0, &payload, token)
        .unwrap();
    println!(
        "first use:  {:?} (bitmap gas {})",
        r.status,
        r.breakdown.section("bitmap")
    );
    assert!(r.status.is_success());

    let r = client
        .call_with_token(&mut chain, target.address, 0, &payload, token)
        .unwrap();
    println!("second use: {:?}", r.status);
    assert!(!r.status.is_success());

    // --- window mechanics on the pure state machine ---------------------
    println!("\nAlg. 2 window on an 8-bit map (the paper's worked example):");
    let mut bm = BitmapState::new(8);
    for i in [0u128, 1, 4, 5] {
        bm.try_use(i);
    }
    println!("  used 0,1,4,5 → window [{}..{}]", bm.start(), bm.end());
    bm.try_use(9);
    println!(
        "  used 9       → window [{}..{}] (slide)",
        bm.start(),
        bm.end()
    );
    bm.try_use(13);
    println!(
        "  used 13      → window [{}..{}] (slide)",
        bm.start(),
        bm.end()
    );
    let miss = bm.try_use(2);
    println!("  token 2 now:   {miss:?} — a token miss; the holder re-applies to the TS");
    assert!(!miss.is_accepted());

    println!("\none-time tokens complete ✔");
}
