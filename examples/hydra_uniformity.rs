//! The §V-A case study: enforcing Hydra uniformity as an ACR.
//!
//! Three structurally different "heads" implement the same adder logic
//! (standing in for the paper's three programming languages), plus one
//! with a planted bug. The TS issues an argument token only when all heads
//! produce identical outputs for the requested payload — so the buggy
//! input can never reach the chain.
//!
//! Run with: `cargo run --example hydra_uniformity`

use smacs::chain::Chain;
use smacs::contracts::{AdderHead, BuggyAdderHead, HydraStyle};
use smacs::lang::{interp::Value, InterpretedContract};
use smacs::token::TokenRequest;
use smacs::ts::{InProcessClient, RuleBook, TokenService, TokenServiceConfig, TsApi};
use smacs::verifiers::HydraTool;
use std::sync::Arc;

fn main() {
    // The TS's local testnet hosts every head.
    let mut testnet = Chain::default_chain();
    let owner = testnet.funded_keypair(1, 10u128.pow(24));
    let mut heads = Vec::new();
    for style in [
        HydraStyle::Direct,
        HydraStyle::ShiftAdd,
        HydraStyle::TwosComplement,
    ] {
        let (d, _) = testnet
            .deploy(&owner, Arc::new(AdderHead::new(style)))
            .expect("deploy head");
        println!("head deployed: {} at {}", d.logic.name(), d.address);
        heads.push(d.address);
    }
    // A head written in a literally different language: Solidity-lite,
    // interpreted on the same chain.
    let adder_src = r#"
        contract Adder {
            uint total;
            function add(uint x) public returns (uint) {
                total = total + x;
                return total;
            }
        }
    "#;
    let interpreted = InterpretedContract::from_source(adder_src, "Adder", Vec::<Value>::new())
        .expect("interpreted head parses");
    let (interpreted, _) = testnet
        .deploy(&owner, Arc::new(interpreted))
        .expect("deploy interpreted head");
    println!(
        "head deployed: Adder (Solidity-lite, interpreted) at {}",
        interpreted.address
    );
    heads.push(interpreted.address);

    let (buggy, _) = testnet
        .deploy(&owner, Arc::new(BuggyAdderHead))
        .expect("deploy buggy head");
    println!(
        "head deployed: BuggyAdderHead at {} (bug triggers on add({}))",
        buggy.address,
        BuggyAdderHead::TRIGGER
    );
    heads.push(buggy.address);
    let protected = heads[0];

    let ts = InProcessClient::new(
        TokenService::new(
            smacs::crypto::Keypair::from_seed(4_000),
            RuleBook::permissive(),
            TokenServiceConfig::default(),
        )
        .with_testnet(testnet.fork())
        .with_tool(Arc::new(HydraTool::new(heads))),
        "owner-secret",
        0,
    );

    // Benign payloads: all four heads agree; tokens flow.
    let client = owner.address();
    for x in [1u64, 7, 1_000] {
        let req = TokenRequest::argument_token(
            protected,
            client,
            AdderHead::ADD_SIG,
            vec![],
            AdderHead::add_payload(x),
        );
        let result = ts.issue(&req);
        println!("add({x}): token issued = {}", result.is_ok());
        assert!(result.is_ok());
    }

    // The trigger payload: the buggy head diverges; issuance is vetoed.
    let req = TokenRequest::argument_token(
        protected,
        client,
        AdderHead::ADD_SIG,
        vec![],
        AdderHead::add_payload(BuggyAdderHead::TRIGGER),
    );
    let result = ts.issue(&req);
    match &result {
        Err(e) => println!("add({}): DENIED — {e}", BuggyAdderHead::TRIGGER),
        Ok(_) => panic!("divergent payload must not get a token"),
    }

    println!("hydra uniformity complete ✔");
}
