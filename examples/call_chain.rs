//! Tokens for call chains (§IV-D, Fig. 5): one transaction triggering
//! `SC_A → SC_B → SC_C`, each SMACS-protected, each extracting its own
//! token from the embedded array.
//!
//! Run with: `cargo run --example call_chain`

use smacs::chain::Chain;
use smacs::contracts::ChainLink;
use smacs::core::client::ClientWallet;
use smacs::core::owner::{OwnerToolkit, ShieldParams};
use smacs::primitives::Address;
use smacs::token::{Token, TokenRequest};
use smacs::ts::{InProcessClient, RuleBook, TokenService, TokenServiceConfig, TsApi};
use std::sync::Arc;

fn main() {
    let mut chain = Chain::default_chain();
    let owner = chain.funded_keypair(1, 10u128.pow(24));
    let client = ClientWallet::new(chain.funded_keypair(2, 10u128.pow(24)));
    let params = ShieldParams {
        token_lifetime_secs: 3_600,
        max_tx_per_second: 0.35,
        disable_one_time: false,
    };

    // Three owners, three TSes (Fig. 5: "these TSes can be operated by
    // different owners").
    let toolkits: Vec<OwnerToolkit> = (0..3)
        .map(|i| OwnerToolkit::new(owner.clone(), smacs::crypto::Keypair::from_seed(3_000 + i)))
        .collect();

    // Deploy back to front: SC_C, then SC_B → C, then SC_A → B.
    let (sc_c, _) = toolkits[2]
        .deploy_shielded(&mut chain, Arc::new(ChainLink::terminal()), &params)
        .expect("deploy C");
    let (sc_b, _) = toolkits[1]
        .deploy_shielded(
            &mut chain,
            Arc::new(ChainLink::forwarding_to(sc_c.address)),
            &params,
        )
        .expect("deploy B");
    let (sc_a, _) = toolkits[0]
        .deploy_shielded(
            &mut chain,
            Arc::new(ChainLink::forwarding_to(sc_b.address)),
            &params,
        )
        .expect("deploy A");
    println!(
        "chain: SC_A {} → SC_B {} → SC_C {}",
        sc_a.address, sc_b.address, sc_c.address
    );

    let now = chain.pending_env().timestamp;
    let services: Vec<InProcessClient> = toolkits
        .iter()
        .map(|tk| {
            InProcessClient::new(
                TokenService::new(
                    tk.ts_keypair().clone(),
                    RuleBook::permissive(),
                    TokenServiceConfig::default(),
                ),
                "owner-secret",
                now,
            )
        })
        .collect();

    // The client obtains one method token per contract from its TS.
    let contracts = [sc_a.address, sc_b.address, sc_c.address];
    let tokens: Vec<(Address, Token)> = contracts
        .iter()
        .zip(&services)
        .map(|(&addr, ts)| {
            let req = TokenRequest::method_token(addr, client.address(), ChainLink::POKE_SIG);
            (addr, ts.issue(&req).expect("token"))
        })
        .collect();
    println!(
        "client holds {} tokens: SC_A:tk_A ‖ SC_B:tk_B ‖ SC_C:tk_C",
        tokens.len()
    );

    // One transaction walks the whole chain.
    let receipt = client
        .call_with_tokens(
            &mut chain,
            sc_a.address,
            0,
            &ChainLink::poke_payload(),
            &tokens,
        )
        .expect("submit");
    println!("chain walk: {:?}, gas {}", receipt.status, receipt.gas_used);
    println!(
        "  per-section gas: verify {} | parse {} | bitmap {}",
        receipt.breakdown.section("verify"),
        receipt.breakdown.section("parse"),
        receipt.breakdown.section("bitmap")
    );
    assert!(receipt.status.is_success());
    for (label, addr) in [
        ("SC_A", sc_a.address),
        ("SC_B", sc_b.address),
        ("SC_C", sc_c.address),
    ] {
        println!("  {label} hops = {}", ChainLink::hops(&chain, addr));
        assert_eq!(ChainLink::hops(&chain, addr), smacs::primitives::U256::ONE);
    }

    // Dropping SC_B's token makes SC_B reject — and atomicity rolls back
    // the whole transaction, including SC_A's already-executed hop.
    let partial: Vec<(Address, Token)> = tokens
        .iter()
        .filter(|(addr, _)| *addr != sc_b.address)
        .cloned()
        .collect();
    let receipt = client
        .call_with_tokens(
            &mut chain,
            sc_a.address,
            0,
            &ChainLink::poke_payload(),
            &partial,
        )
        .expect("submit");
    println!("\nwithout SC_B's token: {:?}", receipt.status);
    assert_eq!(
        receipt.revert_reason(),
        Some("SMACS: no token for this contract")
    );
    assert_eq!(
        ChainLink::hops(&chain, sc_a.address),
        smacs::primitives::U256::ONE
    );
    println!("  SC_A's hop count unchanged — the whole chain is atomic");

    println!("call chain complete ✔");
}
