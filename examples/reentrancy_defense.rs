//! The §V-B case study: blocking the TheDAO-style re-entrancy attack.
//!
//! Three acts:
//! 1. The Fig. 7 attack drains an *unprotected* Bank.
//! 2. The ECF checker flags the attack trace (and clears honest traffic),
//!    so an ECF-backed TS never issues tokens for calls that simulate
//!    non-ECF.
//! 3. A SMACS-protected Bank with one-time tokens (the paper's Example 4
//!    pairing) stops the live attack: the re-entrant inner frame fails
//!    one-time verification, reverting the whole attack transaction —
//!    while honest deposits and withdrawals keep flowing.
//!
//! Run with: `cargo run --example reentrancy_defense`

use smacs::chain::abi;
use smacs::chain::Chain;
use smacs::contracts::{Attacker, Bank, SmacsAwareAttacker};
use smacs::core::client::ClientWallet;
use smacs::core::owner::{OwnerToolkit, ShieldParams};
use smacs::token::TokenRequest;
use smacs::ts::{InProcessClient, RuleBook, TokenService, TokenServiceConfig, TsApi};
use smacs::verifiers::{check_trace_ecf, EcfTool};
use std::sync::Arc;

fn main() {
    // ---- Act 1: the attack on an unprotected bank ---------------------
    let mut chain = Chain::default_chain();
    let owner = chain.funded_keypair(1, 10u128.pow(24));
    let victim = chain.funded_keypair(2, 10u128.pow(24));
    let attacker_eoa = chain.funded_keypair(3, 10u128.pow(24));

    let (bank, _) = chain.deploy(&owner, Arc::new(Bank)).expect("deploy bank");
    chain
        .call_contract(
            &victim,
            bank.address,
            1_000,
            abi::encode_call("addBalance()", &[]),
        )
        .expect("victim deposit");
    let (attacker, _) = chain
        .deploy(&attacker_eoa, Arc::new(Attacker::new(bank.address)))
        .expect("deploy attacker");
    chain.fund_account(attacker.address, 10);
    chain
        .call_contract(
            &attacker_eoa,
            attacker.address,
            2,
            abi::encode_call("deposit()", &[]),
        )
        .expect("attacker deposit");

    // Fork the pre-attack world: this is the state the TS's testnet mirrors.
    let pre_attack = chain.fork();

    let before = chain.state().balance(attacker.address);
    let receipt = chain
        .call_contract(
            &attacker_eoa,
            attacker.address,
            0,
            abi::encode_call("withdraw()", &[]),
        )
        .expect("attack tx");
    let gained = chain.state().balance(attacker.address) - before;
    println!("[1] unprotected Bank: attack {:?}", receipt.status);
    println!(
        "    attacker deposited 2 wei, extracted {gained} wei (re-entrancy confirmed: {})",
        receipt.trace.has_reentrancy(bank.address)
    );
    assert!(gained > 2);

    // ---- Act 2: the ECF checker sees it --------------------------------
    let verdict = check_trace_ecf(&receipt.trace, bank.address);
    println!(
        "[2] ECF checker on the attack trace: ECF = {}",
        verdict.is_ecf()
    );
    assert!(!verdict.is_ecf());

    // An honest withdrawal simulates clean through the TS-side tool.
    let ecf_ts = InProcessClient::new(
        TokenService::new(
            smacs::crypto::Keypair::from_seed(500),
            RuleBook::permissive(),
            TokenServiceConfig::default(),
        )
        .with_testnet(pre_attack)
        .with_tool(Arc::new(EcfTool::new(bank.address))),
        "owner-secret",
        chain.pending_env().timestamp,
    );
    let honest_req = TokenRequest::argument_token(
        bank.address,
        victim.address(),
        "withdraw()",
        vec![],
        abi::encode_call("withdraw()", &[]),
    );
    let issued = ecf_ts.issue(&honest_req);
    println!(
        "    honest withdraw simulates ECF-clean, token issued: {}",
        issued.is_ok()
    );
    assert!(issued.is_ok());

    // ---- Act 3: SMACS-protected bank + one-time tokens -----------------
    let mut chain = Chain::default_chain();
    let owner = chain.funded_keypair(1, 10u128.pow(24));
    let honest = ClientWallet::new(chain.funded_keypair(2, 10u128.pow(24)));
    let attacker_eoa = chain.funded_keypair(3, 10u128.pow(24));
    let toolkit = OwnerToolkit::new(owner, smacs::crypto::Keypair::from_seed(1_000));
    let (bank, _) = toolkit
        .deploy_shielded(
            &mut chain,
            Arc::new(Bank),
            &ShieldParams {
                token_lifetime_secs: 3_600,
                max_tx_per_second: 0.35,
                disable_one_time: false,
            },
        )
        .expect("deploy shielded bank");
    let now = chain.pending_env().timestamp;
    let ts = InProcessClient::new(
        TokenService::new(
            toolkit.ts_keypair().clone(),
            RuleBook::permissive(),
            TokenServiceConfig::default(),
        ),
        "owner-secret",
        now,
    );

    // Honest flow works: deposit + one-time withdraw token.
    let deposit_payload = abi::encode_call("addBalance()", &[]);
    let req = TokenRequest::method_token(bank.address, honest.address(), "addBalance()");
    let token = ts.issue(&req).unwrap();
    let r = honest
        .call_with_token(&mut chain, bank.address, 700, &deposit_payload, token)
        .unwrap();
    assert!(r.status.is_success());

    let withdraw_payload = abi::encode_call("withdraw()", &[]);
    let req = TokenRequest::argument_token(
        bank.address,
        honest.address(),
        "withdraw()",
        vec![],
        withdraw_payload.clone(),
    )
    .one_time();
    let token = ts.issue(&req).unwrap();
    let r = honest
        .call_with_token(&mut chain, bank.address, 0, &withdraw_payload, token)
        .unwrap();
    println!("[3] shielded Bank: honest deposit+withdraw {:?}", r.status);
    assert!(r.status.is_success());

    // The attack: the attacker's EOA gets a one-time withdraw token for the
    // *vulnerable* method and routes it through the Attacker contract. The
    // outer Bank.withdraw consumes the one-time index; the re-entrant inner
    // frame finds it spent, reverts, and the revert propagates through the
    // attacker's fallback — the whole attack transaction dies.
    let honest2 = ClientWallet::new(chain.funded_keypair(4, 10u128.pow(24)));
    let req = TokenRequest::method_token(bank.address, honest2.address(), "addBalance()");
    let token = ts.issue(&req).unwrap();
    honest2
        .call_with_token(&mut chain, bank.address, 1_000, &deposit_payload, token)
        .unwrap();

    // The adaptive attacker: forwards token arrays inward and stashes the
    // withdraw token to replay it from its fallback.
    let (attacker, _) = chain
        .deploy(
            &attacker_eoa,
            Arc::new(SmacsAwareAttacker::new(bank.address)),
        )
        .expect("deploy attacker");
    chain.fund_account(attacker.address, 10);
    // The attacker deposits through its contract (needs a token for
    // addBalance — nothing suspicious there, the TS issues it).
    let req = TokenRequest::argument_token(
        bank.address,
        attacker_eoa.address(),
        "addBalance()",
        vec![],
        deposit_payload.clone(),
    );
    let token = ts.issue(&req).unwrap();
    let deposit_data = smacs::core::client::build_call_data(
        &abi::encode_call("deposit()", &[]),
        bank.address,
        token,
    );
    let nonce = chain.state().nonce(attacker_eoa.address());
    let tx = smacs::chain::Transaction::call(nonce, attacker.address, 2, deposit_data);
    let r = chain.submit(tx.sign(&attacker_eoa)).unwrap();
    assert!(r.status.is_success(), "attacker deposit: {:?}", r.status);

    // Now the strike, with a one-time withdraw token.
    let req = TokenRequest::argument_token(
        bank.address,
        attacker_eoa.address(),
        "withdraw()",
        vec![],
        withdraw_payload.clone(),
    )
    .one_time();
    let token = ts.issue(&req).unwrap();
    let strike_data = smacs::core::client::build_call_data(
        &abi::encode_call("withdraw()", &[]),
        bank.address,
        token,
    );
    let bank_before = chain.state().balance(bank.address);
    let nonce = chain.state().nonce(attacker_eoa.address());
    let tx = smacs::chain::Transaction::call(nonce, attacker.address, 0, strike_data);
    let r = chain.submit(tx.sign(&attacker_eoa)).unwrap();
    println!("    attack through Attacker contract: {:?}", r.status);
    println!(
        "    bank balance unchanged: {} → {}",
        bank_before,
        chain.state().balance(bank.address)
    );
    assert!(
        !r.status.is_success(),
        "one-time token must kill the re-entrant frame"
    );
    assert_eq!(chain.state().balance(bank.address), bank_before);

    println!("re-entrancy defense complete ✔");
}
